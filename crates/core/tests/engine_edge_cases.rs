//! Engine edge cases: inputs real event streams contain but generators
//! avoid (self-loops, duplicates, empty streams), teardown paths, and
//! snapshot corner cases.

use remo_core::{
    AlgoCtx, Algorithm, Engine, EngineConfig, TerminationMode, TopoEvent, VertexId, Weight,
};

#[derive(Debug, Default, Clone, Copy)]
struct Touch;

impl Algorithm for Touch {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {
        ctx.apply(|s| {
            *s += 1;
            true
        });
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {
        ctx.apply(|s| {
            *s += 1;
            true
        });
    }
}

#[test]
fn self_loops_terminate_and_count_once_per_side() {
    let engine = Engine::new(Touch, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(5, 5), (5, 5)]).unwrap();
    let r = engine.try_finish().unwrap();
    // Each self-loop event: one Add at 5, one ReverseAdd at 5.
    assert_eq!(r.states.get(5), Some(&4));
    // The self-edge is stored once (dedup on the second event).
    assert_eq!(r.num_edges, 1);
}

#[test]
fn empty_streams_quiesce_immediately() {
    let engine = Engine::new(Touch, EngineConfig::undirected(3));
    engine
        .try_ingest(vec![Vec::new(), Vec::new(), Vec::new()])
        .unwrap();
    engine.try_await_quiescence().unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.num_vertices, 0);
}

#[test]
fn engine_with_no_work_finishes() {
    let engine = Engine::new(Touch, EngineConfig::undirected(1));
    let r = engine.try_finish().unwrap();
    assert_eq!(r.num_edges, 0);
    assert!(r.states.is_empty());
}

#[test]
fn drop_without_finish_does_not_hang() {
    let engine = Engine::new(Touch, EngineConfig::undirected(4));
    let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i, i + 1)).collect();
    engine.try_ingest_pairs(&pairs).unwrap();
    drop(engine); // teardown mid-stream must terminate promptly
}

#[test]
fn snapshot_twice_with_no_traffic() {
    let mut engine = Engine::new(Touch, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(0, 1)]).unwrap();
    engine.try_await_quiescence().unwrap();
    let s1 = engine.try_snapshot().unwrap();
    let s2 = engine.try_snapshot().unwrap();
    assert_eq!(s1.len(), s2.len());
    assert_eq!(s1.get(0), s2.get(0));
    assert!(s2.epoch > s1.epoch);
    let _ = engine.try_finish().unwrap();
}

#[test]
fn snapshot_on_fresh_engine_is_empty() {
    let mut engine = Engine::new(Touch, EngineConfig::undirected(2));
    let snap = engine.try_snapshot().unwrap();
    assert!(snap.is_empty());
    let _ = engine.try_finish().unwrap();
}

#[test]
fn collect_live_mid_session_then_more_work() {
    let engine = Engine::new(Touch, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(0, 1)]).unwrap();
    let live1 = engine.try_collect_live().unwrap();
    assert_eq!(live1.get(0), Some(&1));
    engine.try_ingest_pairs(&[(0, 2)]).unwrap();
    let live2 = engine.try_collect_live().unwrap();
    assert_eq!(live2.get(0), Some(&2));
    let _ = engine.try_finish().unwrap();
}

#[test]
fn single_shard_safra_detects() {
    let config = EngineConfig {
        termination: TerminationMode::Safra,
        ..EngineConfig::undirected(1)
    };
    let engine = Engine::new(Touch, config);
    engine.try_ingest_pairs(&[(0, 1), (1, 2)]).unwrap();
    engine.try_await_quiescence().unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(1), Some(&2));
}

#[test]
fn safra_mode_snapshot_works() {
    let config = EngineConfig {
        termination: TerminationMode::Safra,
        ..EngineConfig::undirected(3)
    };
    let mut engine = Engine::new(Touch, config);
    engine.try_ingest_pairs(&[(0, 1), (1, 2), (2, 3)]).unwrap();
    engine.try_await_quiescence().unwrap();
    let snap = engine.try_snapshot().unwrap();
    assert_eq!(snap.get(1), Some(&2));
    let _ = engine.try_finish().unwrap();
}

#[test]
fn huge_vertex_ids_are_fine() {
    // Ids are hashed, never used as indices.
    let engine = Engine::new(Touch, EngineConfig::undirected(2));
    engine
        .try_ingest_pairs(&[(u64::MAX - 1, u64::MAX), (0, u64::MAX)])
        .unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(u64::MAX), Some(&2));
}

#[test]
fn weighted_and_unweighted_batches_interleave() {
    let engine = Engine::new(Touch, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(0, 1)]).unwrap();
    engine.try_ingest_weighted(&[(1, 2, 50)]).unwrap();
    engine
        .try_ingest(vec![vec![TopoEvent::weighted(2, 3, 7)]])
        .unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.num_edges, 6);
}

#[test]
fn removal_of_missing_edge_is_harmless() {
    let engine = Engine::new(Touch, EngineConfig::undirected(2));
    engine.try_ingest_pairs(&[(0, 1)]).unwrap();
    engine.try_await_quiescence().unwrap();
    engine.try_delete_pairs(&[(5, 6), (0, 9)]).unwrap(); // never existed
    let r = engine.try_finish().unwrap();
    assert_eq!(r.num_edges, 2);
    assert_eq!(r.metrics.total().edges_removed, 0);
}

#[test]
fn many_small_ingests_accumulate() {
    let engine = Engine::new(Touch, EngineConfig::undirected(2));
    for i in 0..100u64 {
        engine.try_ingest_pairs(&[(i, i + 1)]).unwrap();
    }
    let r = engine.try_finish().unwrap();
    assert_eq!(r.metrics.total().topo_ingested, 100);
    assert_eq!(r.num_edges, 200);
}

#[test]
fn partial_batches_flush_at_idle() {
    // With a batch size far larger than the event count, every cross-shard
    // envelope sits in a partial outbox; only the idle-flush path can
    // deliver them. A deadline turns a lost-flush bug into a fast failure.
    let config = EngineConfig {
        envelope_batch: 1 << 20,
        quiescence_deadline: Some(std::time::Duration::from_secs(10)),
        ..EngineConfig::undirected(4)
    };
    let engine = Engine::new(Touch, config);
    engine
        .try_ingest_pairs(&[(0, 1), (1, 2), (2, 3), (3, 4)])
        .unwrap();
    engine.try_await_quiescence().unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(1), Some(&2));
    assert_eq!(r.states.get(4), Some(&1));
}

#[test]
fn envelope_batch_of_one_streams_eagerly() {
    // The other extreme: flush on every envelope.
    let config = EngineConfig {
        envelope_batch: 1,
        ..EngineConfig::undirected(3)
    };
    let engine = Engine::new(Touch, config);
    engine.try_ingest_pairs(&[(0, 1), (1, 2), (2, 0)]).unwrap();
    let r = engine.try_finish().unwrap();
    assert_eq!(r.states.get(0), Some(&2));
    assert_eq!(r.states.get(1), Some(&2));
    assert_eq!(r.states.get(2), Some(&2));
}
