//! Chaos-injection suite: drives the engine through shard panics, delayed
//! shards, and in-transit message loss via [`FaultPlan`], and asserts the
//! supervised API's contract — errors within deadlines, never hangs, never
//! aborts the process, and degraded harvests from surviving shards.
//!
//! Every test is written against wall-clock bounds well under the CI job's
//! hard `timeout`, so a regression to the old block-forever behavior fails
//! fast instead of wedging the suite.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use remo_core::{
    algorithm::codec, AlgoCtx, Algorithm, DurabilityConfig, Engine, EngineConfig, EngineError,
    FaultPlan, LatticeConfig, Partitioner, PlacementPolicy, QueryRegistry, Snapshot,
    TelemetryConfig, TraceConfig, TransportMode, VertexId, CHAOS_PANIC_MARKER,
};

/// The paper's §II-A example: count each vertex's degree. Enough to make
/// every topology event fan out an envelope per endpoint. `join` is max —
/// degree counts only grow, so the larger count subsumes the smaller —
/// which makes the lattice messaging layers genuinely active when the
/// suite runs with `REMO_CHAOS_LATTICE=1`.
struct Degree;

impl Algorithm for Degree {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
        ctx.apply(|d| {
            *d += 1;
            true
        });
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
        ctx.apply(|d| {
            *d += 1;
            true
        });
    }
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from > *into {
            *into = *from;
            true
        } else {
            false
        }
    }
}

/// `REMO_CHAOS_LATTICE=1` reruns the whole suite with every lattice
/// messaging layer enabled (CI does both): fault containment, deadlines,
/// and degraded collection must hold identically when envelopes coalesce,
/// get dominance-retired, or drain best-first.
fn lattice_mode() -> LatticeConfig {
    match std::env::var("REMO_CHAOS_LATTICE").as_deref() {
        Ok("1") => LatticeConfig::all(),
        _ => LatticeConfig::default(),
    }
}

/// `REMO_CHAOS_TRANSPORT=channel` pins the suite to the plain channel
/// data plane (CI runs both): fault containment must hold whether
/// envelopes travel over SPSC lanes — where a panicked shard's inbound
/// lanes must drain into the undeliverable accounting — or the seed's
/// MPMC channel. The default exercises the lane mesh.
fn transport_mode() -> TransportMode {
    match std::env::var("REMO_CHAOS_TRANSPORT").as_deref() {
        Ok("channel") => TransportMode::Channel,
        _ => TransportMode::Lanes,
    }
}

/// `REMO_CHAOS_PLACEMENT=compact` (or `scatter`) reruns the whole suite
/// with shard threads pinned to cores: fault containment, deadlines, and
/// respawn-in-place recovery must hold identically when every shard owns
/// a seat — and a respawned shard must come back *on* that seat.
fn placement_mode() -> PlacementPolicy {
    match std::env::var("REMO_CHAOS_PLACEMENT").as_deref() {
        Ok("compact") => PlacementPolicy::Compact,
        Ok("scatter") => PlacementPolicy::Scatter,
        _ => PlacementPolicy::None,
    }
}

/// `REMO_CHAOS_VERBOSE_RECORDER=1` drops the flight-recorder sampling
/// shift to 0 (every event recorded) — chaos-forensics mode, exercised by
/// one CI variant so the densest recording path stays covered.
fn telemetry_mode() -> TelemetryConfig {
    match std::env::var("REMO_CHAOS_VERBOSE_RECORDER").as_deref() {
        Ok("1") => TelemetryConfig::default().with_sample_shift(0),
        _ => TelemetryConfig::default(),
    }
}

/// `REMO_CHAOS_TRACE=1` reruns the whole suite with causal tracing at
/// full sampling (every ingest minted a trace): fault containment,
/// deadlines, respawn, and degraded collection must hold identically
/// while every envelope carries a tag and every shard writes span rings.
fn trace_mode() -> TraceConfig {
    match std::env::var("REMO_CHAOS_TRACE").as_deref() {
        Ok("1") => TraceConfig::on()
            .with_sample_shift(0)
            .with_ring_capacity(1 << 15),
        _ => TraceConfig::off(),
    }
}

/// First few vertex ids owned by `shard` under a `shards`-way partition.
fn owned_by(shard: usize, shards: usize) -> Vec<VertexId> {
    let p = Partitioner::new(shards);
    (0..10_000u64)
        .filter(|&v| p.owner(v) == shard)
        .take(8)
        .collect()
}

/// A workload that guarantees both shards of a 2-way engine process
/// events and exchange cross-shard envelopes.
fn cross_shard_pairs() -> Vec<(VertexId, VertexId)> {
    let s0 = owned_by(0, 2);
    let s1 = owned_by(1, 2);
    vec![
        (s0[0], s1[0]),
        (s1[1], s0[1]),
        (s0[2], s0[3]),
        (s1[2], s1[3]),
        (s0[4], s1[4]),
    ]
}

/// Ingest under an active kill-shard fault. The injected panic races the
/// controller's stream handout: if the shard dies first, the send to it
/// correctly reports `ShardPanicked`. Both outcomes are valid for these
/// tests, which assert on the *aftermath* of the death, so only
/// unexpected error kinds fail here.
fn ingest_racing_death<A: Algorithm>(engine: &Engine<A>, pairs: &[(VertexId, VertexId)]) {
    match engine.try_ingest_pairs(pairs) {
        Ok(()) | Err(EngineError::ShardPanicked { .. }) => {}
        Err(e) => panic!("unexpected ingest error: {e}"),
    }
}

fn chaos_config(plan: FaultPlan) -> EngineConfig {
    EngineConfig {
        quiescence_deadline: Some(Duration::from_secs(5)),
        query_deadline: Some(Duration::from_secs(5)),
        fault_plan: plan,
        lattice: lattice_mode(),
        transport: transport_mode(),
        telemetry: telemetry_mode(),
        placement: placement_mode(),
        trace: trace_mode(),
        ..EngineConfig::undirected(2)
    }
}

/// Acceptance: with a FaultPlan that panics shard 1 at its first event,
/// `try_await_quiescence` returns an error within the deadline — no hang,
/// no process abort — and the failure report names shard 1 with the
/// injected payload.
#[test]
fn await_quiescence_surfaces_shard_panic_within_deadline() {
    let engine = Engine::new(Degree, chaos_config(FaultPlan::panic_shard_at(1, 1)));
    ingest_racing_death(&engine, &cross_shard_pairs());

    let start = Instant::now();
    let err = engine
        .try_await_quiescence()
        .expect_err("a panicked shard must fail the quiescence wait");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "error must surface before the deadline, took {:?}",
        start.elapsed()
    );
    match err {
        EngineError::ShardPanicked { failures } => {
            assert!(
                failures.iter().any(|f| f.id == 1),
                "shard 1 must be reported"
            );
            let f = failures.iter().find(|f| f.id == 1).unwrap();
            assert!(
                f.payload.contains(CHAOS_PANIC_MARKER),
                "panic payload must carry the injected marker, got: {}",
                f.payload
            );
        }
        EngineError::QuiescenceTimeout { .. } => {
            panic!("panic should be detected via the failure board, not the deadline")
        }
        other => panic!("unexpected error variant: {other}"),
    }
    assert!(engine.is_degraded());
}

/// Acceptance: `try_finish` on a run with a dead shard returns `Ok` with
/// the surviving shard's states plus a `ShardFailure` report for shard 1 —
/// the run is degraded, not lost.
#[test]
fn finish_degrades_to_surviving_shards() {
    let engine = Engine::new(Degree, chaos_config(FaultPlan::panic_shard_at(1, 1)));
    ingest_racing_death(&engine, &cross_shard_pairs());

    let start = Instant::now();
    let result = engine
        .try_finish()
        .expect("degraded finish must still harvest survivors");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "no hang on finish"
    );

    assert!(result.is_degraded());
    assert_eq!(result.failures.len(), 1, "exactly one shard died");
    assert_eq!(result.failures[0].id, 1);
    assert!(result.failures[0].payload.contains(CHAOS_PANIC_MARKER));
    assert_eq!(result.metrics.lost_shards, vec![1]);

    // Flight recorder: the injected panic must arrive with a trace of the
    // dying shard's last events, ending in the fault entry it wrote on
    // the way down.
    let trace = &result.failures[0].trace;
    assert!(
        !trace.is_empty(),
        "chaos panic must carry a flight-recorder dump"
    );
    assert!(
        trace.iter().any(|line| line.contains("fault kind=panic")),
        "the dump must contain the injected fault entry, got: {trace:?}"
    );

    // Lost-shard counter fold: the dead shard's final snapshot-cell
    // publish (made just before the panic) lands in the aggregate rather
    // than reading as zeros — the injected fault itself is proof.
    assert!(
        result.metrics.per_shard[1].faults_injected >= 1,
        "dead shard's last published counters must be folded in"
    );
    assert!(result.metrics.total().faults_injected >= 1);

    // Every harvested state belongs to the surviving shard, and the
    // survivor did contribute state (its local pair was processed).
    let p = Partitioner::new(2);
    assert!(result.states.iter().all(|(v, _)| p.owner(v) == 0));
    assert!(
        !result.states.is_empty(),
        "survivor states must be harvested"
    );

    // The dead shard's table slot is an empty placeholder.
    assert_eq!(result.tables.len(), 2);
    assert!(result.tables[0].num_vertices() > 0);
    assert_eq!(result.tables[1].num_vertices(), 0);
}

/// Satellite (c): a local-state query against a vertex owned by a failed
/// shard returns `Err(ShardPanicked)` promptly instead of blocking, while
/// the surviving shard keeps answering queries.
#[test]
fn local_state_on_dead_shard_fails_fast() {
    let engine = Engine::new(Degree, chaos_config(FaultPlan::panic_shard_at(1, 1)));
    ingest_racing_death(&engine, &cross_shard_pairs());

    // Wait (bounded) for the failure to land on the board.
    let start = Instant::now();
    while !engine.is_degraded() && start.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(engine.is_degraded(), "shard 1 should have panicked by now");

    let dead_vertex = owned_by(1, 2)[0];
    let start = Instant::now();
    let err = engine.try_local_state(dead_vertex).unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "query against a dead shard must not block"
    );
    assert!(
        matches!(err, EngineError::ShardPanicked { .. }),
        "expected ShardPanicked, got: {err}"
    );

    // Degraded service: the survivor still answers.
    let live_vertex = owned_by(0, 2)[0];
    let _state = engine.try_local_state(live_vertex).unwrap();
}

/// A snapshot attempt on a degraded engine errors immediately at the
/// liveness check instead of wedging at the epoch barrier.
#[test]
fn snapshot_on_degraded_engine_errors_not_hangs() {
    let mut engine = Engine::new(Degree, chaos_config(FaultPlan::panic_shard_at(1, 1)));
    ingest_racing_death(&engine, &cross_shard_pairs());

    let start = Instant::now();
    while !engine.is_degraded() && start.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let start = Instant::now();
    let err = engine.try_snapshot().unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(5));
    assert!(matches!(err, EngineError::ShardPanicked { .. }));
}

/// In-transit message loss (no shard dies): the four-counter imbalance is
/// permanent, so the wait must end with `QuiescenceTimeout` once the
/// configured deadline expires — the seed engine looped forever here.
#[test]
fn dropped_envelopes_hit_quiescence_deadline() {
    let deadline = Duration::from_millis(300);
    let config = EngineConfig {
        quiescence_deadline: Some(deadline),
        fault_plan: FaultPlan::drop_on_shard(0, 1.0),
        lattice: lattice_mode(),
        transport: transport_mode(),
        ..EngineConfig::undirected(2)
    };
    let engine = Engine::new(Degree, config);
    engine.try_ingest_pairs(&cross_shard_pairs()).unwrap();

    let start = Instant::now();
    let err = engine.try_await_quiescence().unwrap_err();
    let elapsed = start.elapsed();
    match err {
        EngineError::QuiescenceTimeout { waited } => {
            assert!(waited >= deadline, "deadline honoured, waited {waited:?}");
        }
        other => panic!("expected QuiescenceTimeout, got: {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout must fire near the deadline, took {elapsed:?}"
    );
    assert!(
        engine.failures().is_empty(),
        "message loss is not a shard failure"
    );
    // Teardown of a non-quiescent engine must still complete (Drop path).
}

/// Delay injection slows a shard without killing it: the run completes
/// cleanly and the injected faults are visible in the metrics.
#[test]
fn delayed_shard_completes_and_reports_fault_metrics() {
    let config = EngineConfig {
        fault_plan: FaultPlan::delay_shard(1, Duration::from_millis(1)),
        lattice: lattice_mode(),
        transport: transport_mode(),
        ..EngineConfig::undirected(2)
    };
    let engine = Engine::new(Degree, config);
    engine.try_ingest_pairs(&cross_shard_pairs()).unwrap();
    let result = engine.try_finish().unwrap();
    assert!(!result.is_degraded());
    let total = result.metrics.total();
    assert!(total.faults_injected >= 1, "delay faults must be counted");
    // The workload itself is fully processed despite the delays.
    assert_eq!(total.topo_ingested, 5);
    // Satellite (a): a clean (if slow) harvest closes the envelope books.
    result.metrics.verify_balance().unwrap();
}

/// Satellite (a): dropping an engine whose shard panicked (without calling
/// finish) returns within the shutdown deadline instead of hanging on
/// join.
#[test]
fn drop_without_finish_does_not_hang_on_dead_shard() {
    let start = Instant::now();
    {
        let engine = Engine::new(Degree, chaos_config(FaultPlan::panic_shard_at(1, 1)));
        ingest_racing_death(&engine, &cross_shard_pairs());
        let probe = Instant::now();
        while !engine.is_degraded() && probe.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Engine dropped here with shard 1 dead and shard 0 alive.
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "Drop must be best-effort bounded, took {:?}",
        start.elapsed()
    );
}

/// Failure accounting composes: `engine.failures()` mirrors what
/// `try_finish` later reports, so callers can poll mid-run.
#[test]
fn failures_accessor_matches_finish_report() {
    let engine = Engine::new(Degree, chaos_config(FaultPlan::panic_shard_at(0, 1)));
    ingest_racing_death(&engine, &cross_shard_pairs());
    let start = Instant::now();
    while !engine.is_degraded() && start.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mid_run = engine.failures();
    assert_eq!(mid_run.len(), 1);
    assert_eq!(mid_run[0].id, 0);

    let result = engine.try_finish().unwrap();
    assert_eq!(result.failures.len(), mid_run.len());
    assert_eq!(result.failures[0].id, 0);
    assert_eq!(result.metrics.lost_shards, vec![0]);
}

/// A fault-free run through the supervised API behaves exactly like the
/// legacy path: clean quiescence, full harvest, empty failure report.
#[test]
fn fault_free_run_is_clean_under_supervised_api() {
    let config = EngineConfig {
        lattice: lattice_mode(),
        transport: transport_mode(),
        ..EngineConfig::undirected(2)
    };
    let engine = Engine::new(Degree, config);
    engine.try_ingest_pairs(&[(0, 1), (1, 2)]).unwrap();
    engine.try_await_quiescence().unwrap();
    assert!(!engine.is_degraded());
    let bound = engine.try_local_state(1).unwrap();
    assert_eq!(bound, Some(2));
    let result = engine.try_finish().unwrap();
    assert!(!result.is_degraded());
    assert!(result.failures.is_empty());
    assert!(result.metrics.lost_shards.is_empty());
    assert_eq!(result.states.get(1), Some(&2));
    let total = result.metrics.total();
    assert_eq!(total.faults_injected, 0);
    assert_eq!(total.envelopes_dropped, 0);
    // Satellite (a): sent = processed + dominated + undeliverable + dropped
    // on every clean quiesced harvest.
    result.metrics.verify_balance().unwrap();
}

/// Mid-run observability composes with fault injection: `metrics_now`
/// stays readable (and coherent) while a shard is dying, and the lost
/// shard's cell survives into post-failure readings.
#[test]
fn metrics_now_remains_readable_through_shard_death() {
    let engine = Engine::new(Degree, chaos_config(FaultPlan::panic_shard_at(1, 1)));
    ingest_racing_death(&engine, &cross_shard_pairs());
    let start = Instant::now();
    while !engine.is_degraded() && start.elapsed() < Duration::from_secs(5) {
        let m = engine.metrics_now();
        // Coherence: a torn read could pair a huge counter with zeros.
        let _ = m.total();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(engine.is_degraded());
    let m = engine.metrics_now();
    assert_eq!(m.lost_shards, vec![1]);
    // The dying shard's pre-panic publish is visible mid-run too.
    assert!(m.per_shard[1].faults_injected >= 1);
}

// ---- durability: WAL + checkpoint recovery ---------------------------

/// Max-label propagation (connected components by max id; labels offset
/// by one so the lattice bottom `0` reads "unlabelled"). Unlike `Degree`,
/// whose increments observe *how many* events arrived, the max join is
/// idempotent under duplicated delivery — which is exactly what WAL
/// replay provides (at-least-once), so a recovered run must land on the
/// same fixpoint byte for byte.
struct MaxLabel;

impl MaxLabel {
    fn absorb(ctx: &mut impl AlgoCtx<u64>, cand: u64) {
        let changed = ctx.apply(|s| {
            if cand > *s {
                *s = cand;
                true
            } else {
                false
            }
        });
        if changed {
            let label = *ctx.state();
            ctx.update_nbrs(&label);
        }
    }
}

impl Algorithm for MaxLabel {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, _val: &u64, _w: u64) {
        let cand = (ctx.vertex() + 1).max(visitor + 1);
        Self::absorb(ctx, cand);
        // A new edge must carry my label to the other endpoint even when
        // nothing changed here — otherwise the fixpoint depends on edge
        // arrival order and the byte-identical assertions are vacuous.
        let label = *ctx.state();
        ctx.update_single_nbr(visitor, &label);
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: u64) {
        let cand = (ctx.vertex() + 1).max(visitor + 1).max(*value);
        Self::absorb(ctx, cand);
        let label = *ctx.state();
        ctx.update_single_nbr(visitor, &label);
    }
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, value: &u64, _w: u64) {
        Self::absorb(ctx, *value);
    }
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from > *into {
            *into = *from;
            true
        } else {
            false
        }
    }
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }
    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }
}

/// Fresh per-test durable root under the OS temp dir.
fn durable_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remo-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A chain 0-1-…-n: every vertex converges to label `n + 1`, with plenty
/// of cross-shard traffic on a 2-way engine.
fn chain_pairs(n: u64) -> Vec<(VertexId, VertexId)> {
    (0..n).map(|i| (i, i + 1)).collect()
}

fn fixpoint(states: &Snapshot<u64>) -> Vec<(VertexId, u64)> {
    states.iter().map(|(v, s)| (v, *s)).collect()
}

/// The uninterrupted, durability-free reference run.
fn baseline_fixpoint(pairs: &[(VertexId, VertexId)]) -> Vec<(VertexId, u64)> {
    let config = EngineConfig {
        lattice: lattice_mode(),
        transport: transport_mode(),
        ..EngineConfig::undirected(2)
    };
    let engine = Engine::new(MaxLabel, config);
    engine.try_ingest_pairs(pairs).unwrap();
    let result = engine.try_finish().unwrap();
    assert!(!result.is_degraded());
    fixpoint(&result.states)
}

fn durable_chaos_config(plan: FaultPlan, dir: &PathBuf, checkpoint_every: u64) -> EngineConfig {
    chaos_config(plan).with_durability(
        DurabilityConfig::new(dir)
            .checkpoint_every(checkpoint_every)
            .fsync(false),
    )
}

/// Tentpole acceptance: a shard that panics mid-run is respawned in
/// place — checkpoint restore + WAL replay — and the run finishes
/// *clean*: no degraded harvest, no failure report, and a fixpoint
/// byte-identical to an uninterrupted run. The old behavior (harvest
/// survivors, lose the shard) now applies only when durability is off or
/// the respawn budget is exhausted.
#[test]
fn panicked_shard_respawns_and_converges_byte_identically() {
    let pairs = chain_pairs(24);
    let want = baseline_fixpoint(&pairs);
    let dir = durable_dir("respawn");
    let engine = Engine::new(
        MaxLabel,
        durable_chaos_config(FaultPlan::panic_shard_at(1, 5), &dir, 8),
    );
    engine.try_ingest_pairs(&pairs).unwrap();
    let result = engine
        .try_finish()
        .expect("recovered run must finish clean");
    assert!(
        !result.is_degraded(),
        "respawned shard must not degrade the harvest: {:?}",
        result.failures
    );
    let total = result.metrics.total();
    assert!(
        total.faults_injected >= 1,
        "the chaos panic must have fired"
    );
    assert!(
        total.shard_respawns >= 1,
        "shard 1 must have been respawned"
    );
    assert!(
        total.wal_records_appended > 0,
        "custody must have been logged"
    );
    assert!(
        total.envelopes_recovered >= 1,
        "the panicked envelope is swept"
    );
    assert_eq!(
        fixpoint(&result.states),
        want,
        "recovery must converge to the byte-identical fixpoint"
    );
    // The books close exactly even across the sweep/replay cycle.
    result.metrics.verify_balance().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos × tracing: a respawned shard must resume span recording into
/// the same ring (the rings live in the telemetry plane, which survives
/// the shard thread), replayed envelopes must surface as `Replay` spans —
/// marked, never double-counted as fresh amplification — and the traced,
/// recovered fixpoint must stay byte-identical to an untraced, unfaulted
/// run. Tracing is forced on here so the default CI pass covers the
/// trace-replay interaction; `REMO_CHAOS_TRACE=1` additionally reruns
/// the whole suite traced.
#[test]
fn respawned_shard_resumes_tracing_and_marks_replays() {
    let pairs = chain_pairs(48);
    let want = baseline_fixpoint(&pairs);
    let dir = durable_dir("trace-respawn");
    // No checkpoint before the panic: everything shard 1 accepted is
    // replayed from the WAL, so tagged envelopes are guaranteed to
    // re-process through the Replay observation point. The panic is set
    // late (event 40 on a 49-vertex chain): shard 1 owns only ~24
    // vertices, so reaching its 40th processed event requires having
    // admitted — and custody-logged, tags included — cross-shard
    // envelopes, which is what makes Replay spans deterministic here
    // (an early panic could land inside the initial topology pull,
    // whose records replay untagged by design).
    let config = durable_chaos_config(FaultPlan::panic_shard_at(1, 40), &dir, 100_000)
        .with_tracing(
            TraceConfig::on()
                .with_sample_shift(0)
                .with_ring_capacity(1 << 15),
        );
    let engine = Engine::new(MaxLabel, config);
    engine.try_ingest_pairs(&pairs).unwrap();
    let traces = {
        engine
            .try_await_quiescence()
            .expect("traced recovery must quiesce clean");
        engine.traces_now()
    };
    let result = engine.try_finish().expect("traced recovery must finish");
    assert!(!result.is_degraded(), "failures: {:?}", result.failures);
    assert_eq!(
        fixpoint(&result.states),
        want,
        "tracing + recovery must not perturb the fixpoint"
    );
    let total = result.metrics.total();
    assert!(total.shard_respawns >= 1, "the chaos panic must respawn");
    assert!(total.trace_roots >= 1, "full sampling must mint roots");
    assert!(
        result.metrics.per_shard[1].trace_spans > 0,
        "the respawned shard must have resumed span recording"
    );
    assert!(!traces.is_empty(), "the trace plane must survive the respawn");
    let replayed: u64 = traces.iter().map(|t| t.replayed).sum();
    assert!(
        replayed >= 1,
        "WAL replay of tagged envelopes must surface as Replay spans"
    );
    let amplification: u64 = traces.iter().map(|t| t.amplification).sum();
    assert!(
        amplification <= total.envelopes_sent,
        "replays must not inflate amplification past the engine's own send count \
         ({amplification} traced sends vs {} total)",
        total.envelopes_sent
    );
    result.metrics.verify_balance().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos × placement: a pinned shard that panics mid-run and is respawned
/// in place must come back *on its seat* — the supervisor re-pins at the
/// top of every (re)spawn, so recovery never silently sheds a core. The
/// telemetry gauges are the witness: after the respawned run quiesces,
/// every shard still reports a pinned core. Runs under Compact placement
/// unconditionally (one core is enough to seat everything).
#[test]
fn respawned_shard_comes_back_pinned() {
    let pairs = chain_pairs(24);
    let dir = durable_dir("pinned-respawn");
    let config = durable_chaos_config(FaultPlan::panic_shard_at(1, 5), &dir, 8)
        .with_placement(PlacementPolicy::Compact);
    let engine = Engine::new(MaxLabel, config);
    engine.try_ingest_pairs(&pairs).unwrap();
    engine
        .try_await_quiescence()
        .expect("respawned run must quiesce clean");
    let gauges = engine.telemetry().gauges();
    for (shard, core) in gauges.pinned_core.iter().enumerate() {
        assert!(
            *core >= 0,
            "shard {shard} must still report a pinned core after recovery, got {core}"
        );
    }
    let result = engine.try_finish().unwrap();
    assert!(!result.is_degraded(), "failures: {:?}", result.failures);
    assert!(
        result.metrics.total().shard_respawns >= 1,
        "the chaos panic must have forced a respawn"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: the twice-dying shard. The first panic hits the live event
/// loop; the second hits *recovery itself* (mid-replay). The supervisor
/// re-sweeps and re-replays from the checkpoint, and the run still
/// converges byte-identically.
#[test]
fn panic_during_replay_recovers_on_second_attempt() {
    let pairs = chain_pairs(24);
    let want = baseline_fixpoint(&pairs);
    let dir = durable_dir("replay-panic");
    let plan = FaultPlan {
        panic_at: Some((1, 5)),
        panic_in_replay: Some((1, 2)),
        ..Default::default()
    };
    // No checkpoint before the panic: the whole history is in the WAL,
    // guaranteeing the replay fault a record to fire on.
    let engine = Engine::new(MaxLabel, durable_chaos_config(plan, &dir, 100_000));
    engine.try_ingest_pairs(&pairs).unwrap();
    let result = engine.try_finish().expect("second recovery must succeed");
    assert!(!result.is_degraded(), "failures: {:?}", result.failures);
    let total = result.metrics.total();
    assert!(
        total.shard_respawns >= 2,
        "one respawn for the live panic, one for the replay panic; got {}",
        total.shard_respawns
    );
    assert!(total.replayed_records >= 1);
    assert_eq!(fixpoint(&result.states), want);
    result.metrics.verify_balance().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a crash in the stage→publish window of checkpointing. The
/// staged temp file is abandoned, recovery falls back to (previous
/// checkpoint + full WAL), and the next attempt publishes cleanly.
#[test]
fn panic_during_checkpoint_falls_back_to_wal() {
    let pairs = chain_pairs(24);
    let want = baseline_fixpoint(&pairs);
    let dir = durable_dir("ckpt-panic");
    let plan = FaultPlan {
        panic_in_checkpoint: Some((1, 1)),
        ..Default::default()
    };
    // Small interval so shard 1 attempts a checkpoint mid-run.
    let engine = Engine::new(MaxLabel, durable_chaos_config(plan, &dir, 4));
    engine.try_ingest_pairs(&pairs).unwrap();
    let result = engine
        .try_finish()
        .expect("checkpoint crash must be recoverable");
    assert!(!result.is_degraded(), "failures: {:?}", result.failures);
    let total = result.metrics.total();
    assert!(
        total.faults_injected >= 1,
        "checkpoint fault must have fired"
    );
    assert!(total.shard_respawns >= 1);
    assert!(
        total.checkpoints_written >= 1,
        "a later attempt must publish successfully"
    );
    assert_eq!(fixpoint(&result.states), want);
    result.metrics.verify_balance().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: when the respawn budget is exhausted (a deterministic
/// poison-pill fault that re-fires after every recovery), the shard
/// degrades exactly as the pre-durability engine did: permanent failure
/// on the board, survivors harvested.
#[test]
fn exhausted_respawn_budget_degrades_cleanly() {
    let pairs = chain_pairs(24);
    let dir = durable_dir("budget");
    let plan = FaultPlan::panic_shard_at(1, 1).repeat_panics(100);
    let config = chaos_config(plan).with_durability(
        DurabilityConfig::new(&dir)
            .checkpoint_every(8)
            .fsync(false)
            .max_respawns(2),
    );
    let engine = Engine::new(MaxLabel, config);
    // The budget burns fast (three back-to-back panics), so the permanent
    // death can race the stream handout exactly like an undurable kill.
    ingest_racing_death(&engine, &pairs);
    let start = Instant::now();
    let result = engine
        .try_finish()
        .expect("budget exhaustion must degrade, not hang");
    assert!(start.elapsed() < Duration::from_secs(20), "no hang");
    assert!(
        result.is_degraded(),
        "the poison pill must exhaust the budget"
    );
    assert_eq!(result.failures.len(), 1);
    assert_eq!(result.failures[0].id, 1);
    assert!(result.failures[0].payload.contains(CHAOS_PANIC_MARKER));
    // The survivors' monotone states were still harvested.
    let p = Partitioner::new(2);
    assert!(result.states.iter().all(|(v, _)| p.owner(v) == 0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole acceptance, cold half: `Engine::open` over a directory a
/// previous process finished into resumes from the durable state — more
/// events stream in, and the final fixpoint is byte-identical to one
/// uninterrupted run over the full input.
#[test]
fn cold_restart_resumes_and_matches_uninterrupted_run() {
    let all = chain_pairs(24);
    let (first, second) = all.split_at(12);
    let want = baseline_fixpoint(&all);
    let dir = durable_dir("cold");
    let config = || {
        EngineConfig {
            lattice: lattice_mode(),
            transport: transport_mode(),
            telemetry: telemetry_mode(),
            ..EngineConfig::undirected(2)
        }
        .with_durability(DurabilityConfig::new(&dir).checkpoint_every(6).fsync(false))
    };
    {
        let engine = Engine::new(MaxLabel, config());
        engine.try_ingest_pairs(first).unwrap();
        let result = engine.try_finish().unwrap();
        assert!(!result.is_degraded());
        // Shutdown force-checkpointed: every shard's durable image is
        // complete and its WAL is empty.
        assert!(result.metrics.total().checkpoints_written >= 1);
    }
    let engine = Engine::open(MaxLabel, config()).expect("manifest must validate");
    engine.try_ingest_pairs(second).unwrap();
    let result = engine.try_finish().unwrap();
    assert!(!result.is_degraded());
    assert_eq!(
        fixpoint(&result.states),
        want,
        "cold restart + second half must equal one uninterrupted run"
    );
    result.metrics.verify_balance().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Engine::open` validates the manifest: a mismatched shard count (which
/// would silently re-partition recovered vertices) is refused, as is
/// opening without durability configured.
#[test]
fn open_rejects_mismatched_or_missing_durability() {
    let dir = durable_dir("manifest");
    {
        let config = EngineConfig::undirected(2)
            .with_transport(transport_mode())
            .with_durability(DurabilityConfig::new(&dir).fsync(false));
        let engine = Engine::new(MaxLabel, config);
        engine.try_ingest_pairs(&[(0, 1)]).unwrap();
        engine.try_finish().unwrap();
    }
    let mismatched = EngineConfig::undirected(3)
        .with_transport(transport_mode())
        .with_durability(DurabilityConfig::new(&dir).fsync(false));
    let err = match Engine::open(MaxLabel, mismatched) {
        Err(e) => e,
        Ok(_) => panic!("a 3-shard open over a 2-shard directory must fail"),
    };
    assert!(
        matches!(err, EngineError::DurabilityMismatch { .. }),
        "expected DurabilityMismatch, got: {err}"
    );
    let err = match Engine::open(MaxLabel, EngineConfig::undirected(2)) {
        Err(e) => e,
        Ok(_) => panic!("open without durability must fail"),
    };
    assert!(matches!(err, EngineError::DurabilityMismatch { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Durability off (the default) takes no WAL/checkpoint code path at all:
/// every durability counter stays zero and a panicked shard is harvested
/// degraded exactly as before — the seed contract is unchanged.
#[test]
fn durability_off_keeps_seed_behavior_and_zero_counters() {
    let engine = Engine::new(MaxLabel, chaos_config(FaultPlan::default()));
    engine.try_ingest_pairs(&chain_pairs(8)).unwrap();
    let result = engine.try_finish().unwrap();
    let total = result.metrics.total();
    assert_eq!(total.wal_records_appended, 0);
    assert_eq!(total.wal_bytes, 0);
    assert_eq!(total.checkpoints_written, 0);
    assert_eq!(total.replayed_records, 0);
    assert_eq!(total.shard_respawns, 0);
    assert_eq!(total.envelopes_recovered, 0);
}

/// The legacy rhh-record storage layout remains selectable and behaves
/// identically to the default dense arena through the supervised API.
#[test]
fn legacy_rhh_record_layout_still_works() {
    use remo_core::StorageLayout;
    let config = EngineConfig::undirected(2)
        .with_storage(StorageLayout::RhhRecord)
        .with_transport(transport_mode());
    let engine = Engine::new(Degree, config);
    engine.try_ingest_pairs(&[(0, 1), (1, 2)]).unwrap();
    engine.try_await_quiescence().unwrap();
    assert_eq!(engine.try_local_state(1).unwrap(), Some(2));
    let result = engine.try_finish().unwrap();
    assert_eq!(result.states.get(1), Some(&2));
    assert!(result.store_bytes > 0);
}

// ---- registry: multi-query columns across respawn --------------------

/// Min-label propagation (components by min id, labels offset by one so
/// the bottom `0` reads "unlabelled"). A second idempotent lattice with a
/// *different* join direction from [`MaxLabel`]: the registry recovery
/// test runs both as live columns of one engine, so a respawn that mixed
/// columns up — or replayed one query's WAL records into the other's
/// slot — would push a max-flavored label into the min lattice and break
/// the byte-identity assertion.
struct MinLabel;

impl MinLabel {
    fn absorb(ctx: &mut impl AlgoCtx<u64>, cand: u64) {
        let changed = ctx.apply(|s| {
            if *s == 0 || cand < *s {
                *s = cand;
                true
            } else {
                false
            }
        });
        if changed {
            let label = *ctx.state();
            ctx.update_nbrs(&label);
        }
    }
}

impl Algorithm for MinLabel {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, _val: &u64, _w: u64) {
        let cand = (ctx.vertex() + 1).min(visitor + 1);
        Self::absorb(ctx, cand);
        let label = *ctx.state();
        ctx.update_single_nbr(visitor, &label);
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: u64) {
        let mut cand = (ctx.vertex() + 1).min(visitor + 1);
        if *value != 0 {
            cand = cand.min(*value);
        }
        Self::absorb(ctx, cand);
        let label = *ctx.state();
        ctx.update_single_nbr(visitor, &label);
    }
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, value: &u64, _w: u64) {
        if *value != 0 {
            Self::absorb(ctx, *value);
        }
    }
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from != 0 && (*into == 0 || *from < *into) {
            *into = *from;
            true
        } else {
            false
        }
    }
    fn encode_state(state: &u64, out: &mut Vec<u8>) {
        codec::put_u64(*state, out);
    }
    fn decode_state(bytes: &[u8]) -> u64 {
        codec::get_u64(bytes)
    }
}

/// Registry × durability × chaos: a shard that panics while N queries are
/// live must come back with **every** query column intact — checkpoint
/// restore and WAL replay recover the whole multi-column vertex state,
/// and the attach control sweeps logged before the crash replay
/// idempotently. After recovery the registry must still be fully alive:
/// a *late* attach backfills from the respawned shard's restored
/// adjacency and lands on the watched-whole-stream fixpoint.
#[test]
fn respawned_shard_recovers_all_query_columns() {
    let pairs = chain_pairs(24);
    // Fault-free solo references, one per lattice.
    let want_max = baseline_fixpoint(&pairs);
    let want_min = {
        let config = EngineConfig {
            lattice: lattice_mode(),
            transport: transport_mode(),
            ..EngineConfig::undirected(2)
        };
        let engine = Engine::new(MinLabel, config);
        engine.try_ingest_pairs(&pairs).unwrap();
        let result = engine.try_finish().unwrap();
        assert!(!result.is_degraded());
        fixpoint(&result.states)
    };

    let dir = durable_dir("registry-respawn");
    let reg = QueryRegistry::<u64>::new();
    let engine = Engine::new(
        reg.clone(),
        durable_chaos_config(FaultPlan::panic_shard_at(1, 5), &dir, 8),
    );
    let q_max = reg.attach(&engine, MaxLabel, &[], "max").unwrap();
    let q_min = reg.attach(&engine, MinLabel, &[], "min").unwrap();
    engine.try_ingest_pairs(&pairs).unwrap();
    engine
        .try_await_quiescence()
        .expect("recovered multi-query run must quiesce clean");
    // Live attach *after* the panic + respawn: the prime sweep reads the
    // respawned shard's recovered adjacency, so a hole in its store would
    // surface here as a short column.
    let q_late = reg.attach(&engine, MaxLabel, &[], "max-late").unwrap();
    let result = engine
        .try_finish()
        .expect("recovered multi-query run must finish clean");
    assert!(
        !result.is_degraded(),
        "respawned shard must not degrade the harvest: {:?}",
        result.failures
    );
    let total = result.metrics.total();
    assert!(total.faults_injected >= 1, "the chaos panic must have fired");
    assert!(total.shard_respawns >= 1, "shard 1 must have been respawned");
    assert_eq!(
        fixpoint(&reg.project(&result.states, q_max)),
        want_max,
        "max column must survive the respawn byte-identically"
    );
    assert_eq!(
        fixpoint(&reg.project(&result.states, q_min)),
        want_min,
        "min column must survive the respawn byte-identically"
    );
    assert_eq!(
        fixpoint(&reg.project(&result.states, q_late)),
        want_max,
        "post-recovery attach must backfill the restored adjacency"
    );
    result.metrics.verify_balance().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
