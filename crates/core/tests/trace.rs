//! Causal-tracing integration suite (PR 10 tentpole): tracing must be
//! pure observation. The pinned contracts:
//!
//! - **Fixpoint identity**: a tracing-on run (sampling every ingest) is
//!   byte-identical to a tracing-off run over the same stream, across the
//!   shards × layout × transport × lattice grid — tags are cargo, never
//!   consulted by the computation.
//! - **Tree sanity**: every reconstructed propagation tree is anchored at
//!   a genuinely ingested topology event, its hop depths are strictly
//!   ascending, its per-trace tallies equal the per-hop sums, and the
//!   total amplification never exceeds the engine's own envelope counter.
//! - **Exporter round-trip**: the trace families render in Prometheus and
//!   JSON whether tracing is on (live values) or off (stable zeros), and
//!   the registry's `column_bytes` gauge tracks detach-time compaction.

use std::collections::BTreeSet;

use remo_core::{
    AlgoCtx, Algorithm, Engine, EngineConfig, QueryRegistry, StorageLayout, TraceConfig,
    TransportMode, VertexId,
};

/// Max-label propagation (see `tests/prop_recovery.rs`): the monotone max
/// join makes the fixpoint interleaving-independent — `on_add` always
/// pushes the local label across the new edge, so no cascade depends on
/// adjacency-at-processing-time. Multi-hop cascades with real fan-out
/// exercise coalescing, dominance, and suppression — every span kind.
struct MaxLabel;

impl MaxLabel {
    fn absorb(ctx: &mut impl AlgoCtx<u64>, cand: u64) {
        let changed = ctx.apply(|s| {
            if cand > *s {
                *s = cand;
                true
            } else {
                false
            }
        });
        if changed {
            let label = *ctx.state();
            ctx.update_nbrs(&label);
        }
    }
}

impl Algorithm for MaxLabel {
    type State = u64;
    fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, _val: &u64, _w: u64) {
        let cand = (ctx.vertex() + 1).max(visitor + 1);
        Self::absorb(ctx, cand);
        let label = *ctx.state();
        ctx.update_single_nbr(visitor, &label);
    }
    fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, visitor: VertexId, value: &u64, _w: u64) {
        let cand = (ctx.vertex() + 1).max(visitor + 1).max(*value);
        Self::absorb(ctx, cand);
        let label = *ctx.state();
        ctx.update_single_nbr(visitor, &label);
    }
    fn on_update(&self, ctx: &mut impl AlgoCtx<u64>, _visitor: VertexId, value: &u64, _w: u64) {
        Self::absorb(ctx, *value);
    }
    fn join(into: &mut u64, from: &u64) -> bool {
        if *from > *into {
            *into = *from;
            true
        } else {
            false
        }
    }
    fn priority(state: &u64) -> Option<u64> {
        Some(u64::MAX - *state)
    }
}

/// Deterministic xorshift edge stream over a small vertex range.
fn edge_stream(n: usize, vertices: u64, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n)
        .map(|_| {
            let s = step() % vertices;
            let mut d = step() % vertices;
            if d == s {
                d = (d + 1) % vertices;
            }
            (s, d)
        })
        .collect()
}

fn run_fixpoint(config: EngineConfig, edges: &[(VertexId, VertexId)]) -> Vec<(VertexId, u64)> {
    let engine = Engine::new(MaxLabel, config);
    engine.try_ingest_pairs(edges).unwrap();
    let result = engine.try_finish().unwrap();
    assert!(result.failures.is_empty());
    result.metrics.verify_balance().unwrap();
    let mut states = result.states.into_vec();
    states.sort_unstable_by_key(|&(v, _)| v);
    states
}

/// Tracing-on runs (sampling *every* ingest — the most invasive setting)
/// reach byte-identical fixpoints to tracing-off runs over the full
/// shards × layout × transport × lattice grid.
#[test]
fn tracing_is_invisible_to_the_fixpoint() {
    let edges = edge_stream(220, 61, 0x7ace);
    for (i, shards) in [1usize, 2, 4].iter().enumerate() {
        for layout in [StorageLayout::DenseArena, StorageLayout::RhhRecord] {
            for transport in [TransportMode::Lanes, TransportMode::Channel] {
                for lattice in [false, true] {
                    let base = || {
                        let mut c = EngineConfig::undirected(*shards)
                            .with_storage(layout)
                            .with_transport(transport);
                        if lattice {
                            c = c.with_lattice();
                        }
                        c
                    };
                    let ctx = format!(
                        "case {i}: P={shards} {layout:?} {transport:?} lattice={lattice}"
                    );
                    let want = run_fixpoint(base(), &edges);
                    let traced = base().with_tracing(
                        TraceConfig::on()
                            .with_sample_shift(0)
                            .with_ring_capacity(1 << 16),
                    );
                    let got = run_fixpoint(traced, &edges);
                    assert_eq!(got, want, "{ctx}: tracing perturbed the fixpoint");
                }
            }
        }
    }
}

/// Tracing off (the default) keeps every trace counter at zero — the
/// observation points never fire.
#[test]
fn tracing_off_records_nothing() {
    let edges = edge_stream(400, 61, 0x0ff7);
    let engine = Engine::new(MaxLabel, EngineConfig::undirected(2));
    let hub = engine.telemetry();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    assert!(engine.traces_now().is_empty());
    assert_eq!(hub.trace_summary().observed, 0);
    let result = engine.try_finish().unwrap();
    let t = result.metrics.total();
    assert_eq!(t.trace_roots, 0);
    assert_eq!(t.trace_spans, 0);
    assert_eq!(t.trace_spans_dropped, 0);
}

/// Propagation-tree sanity on a fully-sampled run: every tree is anchored
/// at an ingested update, hop depths ascend strictly, per-trace tallies
/// equal their per-hop sums, and total amplification cross-checks against
/// the engine's own `envelopes_sent` counter.
#[test]
fn propagation_trees_are_sane() {
    let edges = edge_stream(250, 47, 0x5a9e);
    let config = EngineConfig::undirected(2).with_lattice().with_tracing(
        TraceConfig::on()
            .with_sample_shift(0)
            .with_ring_capacity(1 << 16),
    );
    let engine = Engine::new(MaxLabel, config);
    let hub = engine.telemetry();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();

    let traces = engine.traces_now();
    assert!(!traces.is_empty(), "a fully-sampled run must observe traces");
    let ingested: BTreeSet<(u64, u64)> = edges.iter().copied().collect();
    let mut total_amplification = 0u64;
    for t in &traces {
        assert!(
            ingested.contains(&(t.src, t.dst)),
            "trace {} rooted at ({}, {}), which was never ingested",
            t.id,
            t.src,
            t.dst
        );
        assert!(
            t.hops.windows(2).all(|w| w[0].hop < w[1].hop),
            "trace {}: hop depths must ascend strictly",
            t.id
        );
        assert_eq!(
            t.depth,
            t.hops.last().map_or(0, |h| h.hop),
            "trace {}: depth must equal the deepest hop",
            t.id
        );
        assert_eq!(
            t.amplification,
            t.hops.iter().map(|h| h.sent).sum::<u64>(),
            "trace {}: amplification must equal the per-hop send sum",
            t.id
        );
        assert_eq!(t.processed, t.hops.iter().map(|h| h.processed).sum::<u64>());
        assert_eq!(t.replayed, 0, "no shard died, nothing may be replayed");
        assert!(
            t.cross_shard_hops <= t.amplification,
            "trace {}: cross-shard hops are a subset of sends",
            t.id
        );
        total_amplification += t.amplification;
    }
    assert!(
        traces.iter().any(|t| t.amplification >= 1),
        "at least one update must have caused an envelope"
    );
    assert!(
        traces.iter().any(|t| t.depth >= 2),
        "max-label cascades must reach depth >= 2"
    );

    let summary = hub.trace_summary();
    assert_eq!(summary.observed, traces.len() as u64);
    assert_eq!(summary.fixpoint.count, traces.len() as u64);

    let result = engine.try_finish().unwrap();
    let total = result.metrics.total();
    assert_eq!(
        traces.len() as u64,
        total.trace_roots,
        "with a roomy ring every minted root must reconstruct"
    );
    assert_eq!(total.trace_spans_dropped, 0, "ring must not wrap at this scale");
    assert!(
        total_amplification <= total.envelopes_sent,
        "traced sends ({total_amplification}) cannot exceed all sends ({})",
        total.envelopes_sent
    );
    assert!(total_amplification > 0);
}

/// Both exporters carry the trace families — live values when tracing is
/// on, stable zeros when it is off (scrapers need a fixed family set).
#[test]
fn trace_families_round_trip_both_exporters() {
    let edges = edge_stream(200, 31, 0xe4b0);
    let run = |trace: TraceConfig| {
        let engine =
            Engine::new(MaxLabel, EngineConfig::undirected(2).with_tracing(trace));
        let hub = engine.telemetry();
        engine.try_ingest_pairs(&edges).unwrap();
        engine.try_await_quiescence().unwrap();
        let (prom, json) = (hub.render_prometheus(), hub.render_json());
        drop(engine.try_finish().unwrap());
        (prom, json)
    };

    for (on, (prom, json)) in [
        (
            true,
            run(TraceConfig::on().with_sample_shift(0).with_ring_capacity(1 << 14)),
        ),
        (false, run(TraceConfig::off())),
    ] {
        for family in [
            "remo_traces_observed",
            "remo_trace_fixpoint_seconds",
            "remo_trace_hops",
            "remo_trace_amplification",
            "remo_trace_cross_shard_hops_total",
            "remo_trace_cross_numa_hops_total",
        ] {
            assert!(prom.contains(family), "tracing={on}: missing family {family}");
        }
        let observed: u64 = prom
            .lines()
            .find_map(|l| l.strip_prefix("remo_traces_observed "))
            .expect("gauge line present")
            .trim()
            .parse()
            .expect("gauge value parses");
        assert_eq!(observed > 0, on, "observed={observed} with tracing={on}");
        assert!(json.contains("\"traces\":"), "tracing={on}: JSON traces object");
        for key in ["\"observed\":", "\"amplification\":", "\"cross_shard_hops\":"] {
            assert!(json.contains(key), "tracing={on}: missing JSON key {key}");
        }
    }
}

/// Registry satellite: the `registry_column_bytes` gauge is recounted by
/// the Prime sweep (attach) and the Clear sweep (detach), and detach-time
/// compaction reclaims the whole column store when the last query leaves.
#[test]
fn registry_column_bytes_tracks_attach_and_detach_compaction() {
    /// Degree counting as a registry cell query: the prime sweep's muted
    /// `on_add` per stored edge materializes a column on every vertex.
    struct DegreeCell;
    impl Algorithm for DegreeCell {
        type State = u64;
        fn on_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
            ctx.apply(|d| {
                *d += 1;
                true
            });
        }
        fn on_reverse_add(&self, ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: u64) {
            ctx.apply(|d| {
                *d += 1;
                true
            });
        }
        fn join(into: &mut u64, from: &u64) -> bool {
            if *from > *into {
                *into = *from;
                true
            } else {
                false
            }
        }
    }

    let column_bytes_of = |prom: &str| -> u64 {
        prom.lines()
            .find_map(|l| l.strip_prefix("remo_registry_column_bytes "))
            .expect("column-bytes gauge line present")
            .trim()
            .parse()
            .expect("gauge value parses")
    };

    let edges = edge_stream(300, 41, 0xc01b);
    let reg: QueryRegistry<u64> = QueryRegistry::new();
    let engine = Engine::new(reg.clone(), EngineConfig::undirected(2));
    let hub = engine.telemetry();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();

    let id = reg.attach(&engine, DegreeCell, &[], "degree").unwrap();
    engine.try_await_quiescence().unwrap();
    let attached = column_bytes_of(&hub.render_prometheus());
    assert!(
        attached > 0,
        "prime sweep must count the materialized columns"
    );
    assert!(hub.render_json().contains("\"column_bytes\":"));

    reg.detach(&engine, id).unwrap();
    engine.try_await_quiescence().unwrap();
    let detached = column_bytes_of(&hub.render_prometheus());
    assert_eq!(
        detached, 0,
        "clear sweep must compact every column to nothing once the last query leaves"
    );
    drop(engine.try_finish().unwrap());
}
