//! Figure 3 — static vs. dynamic strategies (stacked bars), Twitter
//! dataset, one node.
//!
//! Three strategies over the identical pre-randomized edge stream:
//!
//! 1. **Static**: build an optimized CSR (symmetrize + counting-sort
//!    compression), then one static BFS execution.
//! 2. **Dynamic + static BFS**: build the dynamic graph by streaming edge
//!    events through the engine (no algorithm hooked), then run a static
//!    BFS over the resulting DegAwareRHH-style structure.
//! 3. **Dynamic + live BFS (overlap)**: stream the same events with the
//!    incremental BFS hooked in — the result is continuously queryable.
//!
//! Paper shape to reproduce: static construction ≈ 2x faster than dynamic;
//! static BFS on the dynamic structure slower than on CSR; the overlapped
//! strategy adds little over construction alone (bar 3 ≈ bar 2's
//! construction part) while offering live state the whole time.
//!
//! Run: `cargo bench -p remo-bench --bench fig3`

use std::time::Instant;

use remo_algos::IncBfs;
use remo_bench::*;
use remo_gen::{stream, Dataset};

fn main() {
    let scale = bench_scale();
    let shards = *shard_counts().last().unwrap_or(&4);
    let mut edges = Dataset::TwitterLike.generate(scale, 303);
    stream::shuffle(&mut edges, 42);
    let source = edges[0].0;
    println!(
        "Twitter-like stand-in: {} edge events, {} shards, BFS source {}",
        edges.len(),
        shards,
        source
    );

    // --- Bar 1: static construction + static BFS ---
    let t0 = Instant::now();
    let build = remo_baseline::build_undirected(&edges);
    let static_build = t0.elapsed();
    let t0 = Instant::now();
    let static_levels = remo_baseline::bfs_levels(&build.csr, source);
    let static_bfs = t0.elapsed();
    let reached_static = static_levels.iter().filter(|&&l| l != u64::MAX).count();

    // --- Bar 2: dynamic construction, then static BFS on dynamic store ---
    let run = timed_run(ConstructionOnly, shards, &edges, &[]);
    let dynamic_build = run.elapsed;
    let t0 = Instant::now();
    let dyn_levels = static_bfs_on_dynamic(&run.result.tables, source);
    let static_on_dynamic = t0.elapsed();

    // --- Bar 3: dynamic construction overlapped with live BFS ---
    let live = timed_run(IncBfs, shards, &edges, &[source]);
    let overlap = live.elapsed;
    let reached_live = live
        .result
        .states
        .iter()
        .filter(|(_, &l)| l != u64::MAX && l != 0)
        .count();

    report(
        "fig3",
        "Figure 3: static vs dynamic strategies (time to completion)",
        &["Strategy", "Construction", "BFS", "Total"],
        &[
            vec![
                "static build + static BFS".into(),
                fmt_dur(static_build),
                fmt_dur(static_bfs),
                fmt_dur(static_build + static_bfs),
            ],
            vec![
                "dynamic build + static BFS on dynamic".into(),
                fmt_dur(dynamic_build),
                fmt_dur(static_on_dynamic),
                fmt_dur(dynamic_build + static_on_dynamic),
            ],
            vec![
                "dynamic build overlapped with live BFS".into(),
                fmt_dur(overlap),
                "(live, overlapped)".into(),
                fmt_dur(overlap),
            ],
        ],
    );

    // §V-B's compression argument, quantified: CSR's static layout vs the
    // dynamic store's hash-table adjacency.
    println!(
        "\nMemory: CSR {:.1} MB vs dynamic store adjacency {:.1} MB ({:.2}x)",
        build.csr.heap_bytes() as f64 / 1e6,
        run.result.adjacency_bytes as f64 / 1e6,
        run.result.adjacency_bytes as f64 / build.csr.heap_bytes() as f64
    );
    println!("\nShape checks vs the paper:");
    println!(
        "  dynamic/static construction ratio: {:.2}x (paper: ~2x)",
        dynamic_build.as_secs_f64() / static_build.as_secs_f64().max(1e-9)
    );
    println!(
        "  static-BFS-on-dynamic / on-CSR:    {:.2}x (paper: > 1x, CSR locality wins)",
        static_on_dynamic.as_secs_f64() / static_bfs.as_secs_f64().max(1e-9)
    );
    println!(
        "  overlap overhead vs dynamic build:  {:.2}x (paper: ~no observable overhead)",
        overlap.as_secs_f64() / dynamic_build.as_secs_f64().max(1e-9)
    );
    assert_eq!(
        reached_static,
        dyn_levels.iter().filter(|(_, l)| *l != u64::MAX).count(),
        "both static runs must agree"
    );
    assert_eq!(
        reached_static, reached_live,
        "live BFS must agree with static"
    );
}
