//! Ablation — the trace plane: causal update tracing + phase accounting
//! off / default sampling / full sampling.
//!
//! The trace plane is runtime-selectable (`EngineConfig::with_tracing`)
//! and off by default, so the data path must not pay for observability
//! nobody asked for: with tracing off every envelope carries a zero tag
//! and every trace-plane entry point is one predictable untaken branch.
//! This harness prices the whole spectrum on RMAT-14 SSSP (shard width
//! from `REMO_BENCH_SHARDS`, default 8):
//!
//! - `plain`   — tracing off AND phase accounting off: the engine as it
//!   was before the trace plane existed; the reference every gate and
//!   dWall column compares against, interleaved rep-by-rep.
//! - `off`     — the shipping default: tracing off, phase accounting on
//!   (`TelemetryConfig::default`). Gated at ≤1% wall over `plain`.
//! - `sampled` — [`TraceConfig::on`]: 1-in-64 ingest sampling, 4096-span
//!   rings. Gated at ≤3% wall over `plain`.
//! - `full`    — every ingest minted a trace (`sample_shift 0`, 64Ki
//!   rings): the diagnostic ceiling, reported but not gated.
//!
//! Every cell must converge to the byte-identical SSSP fixpoint. Both
//! traced cells must reconstruct at least one propagation tree with
//! non-zero amplification and non-zero root→fixpoint latency, and the
//! amplification total (traced sends) must stay ≤ the engine's own
//! `envelopes_sent` counter for the same run — the cross-check that the
//! trace plane measures the cascade the engine actually ran rather than
//! inventing one. Wall gates are skipped below full scale or when the
//! box has fewer cores than shards (`REMO_BENCH_STRICT_TRACE=1`
//! overrides), same policy as `ablate_wal` / `ablate_transport`.
//!
//! Run: `cargo bench -p remo-bench --bench ablate_trace`

use std::time::{Duration, Instant};

use remo_algos::IncSssp;
use remo_bench::*;
use remo_core::{Engine, EngineConfig, TelemetryConfig, TraceConfig, VertexId, Weight};
use remo_gen::{stream, RmatConfig};
use remo_store::hash::mix64;

/// `REMO_BENCH_SHARDS` (last entry wins, default 8): the committed
/// artifact is regenerated at whatever width gives `cores >= shards` on
/// the producing box, so its gates are *asserted*, not skipped — on the
/// 1-core dev container that is 1 shard; a multi-core runner uses 8.
fn shards() -> usize {
    shard_counts().last().copied().unwrap_or(8)
}

/// Trace-off acceptance ceiling vs the plain reference cell.
const OFF_OVERHEAD_CEILING: f64 = 1.01;
/// Default-sampling acceptance ceiling vs the plain reference cell.
const SAMPLED_OVERHEAD_CEILING: f64 = 1.03;

/// Weight derived from the endpoints only (symmetric), so duplicate and
/// reversed edges in the stream agree on the undirected edge's weight.
fn edge_weight(s: VertexId, d: VertexId) -> Weight {
    (mix64(s ^ d) % 15) + 1
}

enum Mode {
    /// Pre-trace-plane engine: no tracing, no phase accounting.
    Plain,
    /// Shipping default: no tracing, phase accounting on.
    Off,
    /// Tracing at `shift` (0 = every ingest) with `ring` spans per shard.
    Traced { shift: u32, ring: usize },
}

struct Cell {
    elapsed: Duration,
    events: u64,
    envelopes_sent: u64,
    trace_roots: u64,
    trees: u64,
    amp_total: u64,
    amp_p50: f64,
    amp_p99: f64,
    fix_p50_us: f64,
    fix_p99_us: f64,
    cross_shard: u64,
    states: Vec<(VertexId, u64)>,
}

fn run_once(
    mode: &Mode,
    shards: usize,
    expected_vertices: usize,
    weighted: &[(VertexId, VertexId, Weight)],
    source: VertexId,
) -> Cell {
    let mut cfg = EngineConfig::undirected(shards).with_expected_vertices(expected_vertices);
    match mode {
        Mode::Plain => {
            cfg = cfg.with_telemetry(TelemetryConfig::default().with_phase_accounting(false));
        }
        Mode::Off => {}
        Mode::Traced { shift, ring } => {
            cfg = cfg.with_tracing(
                TraceConfig::on()
                    .with_sample_shift(*shift)
                    .with_ring_capacity(*ring),
            );
        }
    }
    let engine = Engine::new(IncSssp, cfg);
    engine.try_init_vertex(source).unwrap();
    let start = Instant::now();
    engine.try_ingest_weighted(weighted).unwrap();
    engine.try_await_quiescence().unwrap();
    let elapsed = start.elapsed();
    // Harvest trees from the still-live engine: `traces_now` is the same
    // call a dashboard would poll mid-run.
    let traces = engine.traces_now();
    let summary = engine.trace_summary();
    let result = engine.try_finish().unwrap();
    note_service(&result.metrics.service);
    note_ingest(elapsed, &result.metrics.total());
    let total = result.metrics.total();
    result.metrics.verify_balance().unwrap();
    Cell {
        elapsed,
        events: total.events_processed(),
        envelopes_sent: total.envelopes_sent,
        trace_roots: total.trace_roots,
        trees: traces.len() as u64,
        amp_total: traces.iter().map(|t| t.amplification).sum(),
        amp_p50: summary.amplification.quantile_ns(0.50),
        amp_p99: summary.amplification.quantile_ns(0.99),
        fix_p50_us: summary.fixpoint.quantile_ns(0.50) / 1_000.0,
        fix_p99_us: summary.fixpoint.quantile_ns(0.99) / 1_000.0,
        cross_shard: summary.cross_shard_hops,
        states: result.states.into_vec(),
    }
}

fn main() {
    let scale = bench_scale();
    let rmat_scale: u32 = (14 + (scale.log2().round() as i32).clamp(-6, 6)) as u32;
    let cfg = RmatConfig::graph500(rmat_scale);
    let mut edges = remo_gen::rmat::generate(&cfg);
    stream::shuffle(&mut edges, 61);
    let weighted: Vec<(VertexId, VertexId, Weight)> = edges
        .iter()
        .map(|&(s, d)| (s, d, edge_weight(s, d)))
        .collect();
    let source = edges[0].0;
    let expected_vertices = 1usize << rmat_scale;
    let shards = shards();

    let grid: Vec<(&str, Mode)> = vec![
        ("plain", Mode::Plain),
        ("off", Mode::Off),
        (
            "sampled",
            Mode::Traced {
                shift: 6,
                ring: 4096,
            },
        ),
        (
            "full",
            Mode::Traced {
                shift: 0,
                ring: 1 << 16,
            },
        ),
    ];

    // Rep-major sweep keeping each cell's minimum wall-clock (see
    // ablate_coalescing: interleaving beats rep count against load
    // drift). Counters, trees, and states come from the final rep.
    let mut cells: Vec<Option<Cell>> = grid.iter().map(|_| None).collect();
    for _ in 0..bench_reps() {
        for (slot, (_, mode)) in cells.iter_mut().zip(&grid) {
            let mut cell = run_once(mode, shards, expected_vertices, &weighted, source);
            if let Some(prev) = slot.take() {
                cell.elapsed = cell.elapsed.min(prev.elapsed);
            }
            *slot = Some(cell);
        }
    }
    let cells: Vec<Cell> = cells.into_iter().map(|c| c.expect("reps >= 1")).collect();
    let plain = &cells[0];

    for ((tag, mode), cell) in grid.iter().zip(&cells) {
        assert_eq!(
            plain.states, cell.states,
            "{tag}: SSSP fixpoint diverged across trace modes"
        );
        match mode {
            Mode::Plain | Mode::Off => assert_eq!(
                (cell.trace_roots, cell.trees),
                (0, 0),
                "{tag}: tracing off must mint no roots and reconstruct no trees"
            ),
            Mode::Traced { .. } => {
                assert!(
                    cell.trees >= 1,
                    "{tag}: a traced run must reconstruct at least one tree"
                );
                assert!(
                    cell.amp_total >= 1 && cell.fix_p99_us > 0.0,
                    "{tag}: traced trees must carry non-zero amplification \
                     and hop latency (amp {}, fixpoint p99 {:.1}us)",
                    cell.amp_total,
                    cell.fix_p99_us
                );
                // The cross-check: traced sends are a sampled subset of
                // what the engine counted sent, never more.
                assert!(
                    cell.amp_total <= cell.envelopes_sent,
                    "{tag}: traced amplification ({}) exceeds the engine's \
                     envelopes_sent ({})",
                    cell.amp_total,
                    cell.envelopes_sent
                );
            }
        }
    }

    // Acceptance gates: observability nobody asked for costs nothing, and
    // default sampling stays inside the telemetry budget. Guarded like
    // ablate_wal's gate — at smoke scales the runs are too short to
    // resolve 1%, and with fewer cores than shards the wall delta
    // measures the kernel scheduler, not the trace plane.
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let strict = std::env::var("REMO_BENCH_STRICT_TRACE").as_deref() == Ok("1");
    if scale >= 1.0 && (cores >= shards || strict) {
        for (tag, idx, ceiling) in [
            ("trace-off", 1, OFF_OVERHEAD_CEILING),
            ("trace-sampled", 2, SAMPLED_OVERHEAD_CEILING),
        ] {
            let ratio = cells[idx].elapsed.as_secs_f64() / plain.elapsed.as_secs_f64().max(1e-9);
            assert!(
                ratio <= ceiling,
                "{tag} costs {:.2}% wall over the plain reference (ceiling {:.0}%)",
                100.0 * (ratio - 1.0),
                100.0 * (ceiling - 1.0)
            );
        }
    } else if scale >= 1.0 {
        eprintln!(
            "note: trace overhead gates skipped ({cores} cores < {shards} \
             shards; wall deltas would measure the scheduler)"
        );
    }

    let mut rows = Vec::new();
    for ((tag, _), cell) in grid.iter().zip(&cells) {
        let wall_delta = if std::ptr::eq(plain, cell) {
            "base".to_string()
        } else {
            format!(
                "{:+.1}%",
                100.0 * (cell.elapsed.as_secs_f64() - plain.elapsed.as_secs_f64())
                    / plain.elapsed.as_secs_f64().max(1e-9)
            )
        };
        let eps = cell.events as f64 / cell.elapsed.as_secs_f64().max(1e-9);
        rows.push(vec![
            tag.to_string(),
            fmt_dur(cell.elapsed),
            wall_delta,
            format!("{eps:.0}"),
            cell.trace_roots.to_string(),
            cell.trees.to_string(),
            cell.amp_total.to_string(),
            format!("{:.0}/{:.0}", cell.amp_p50, cell.amp_p99),
            format!("{:.0}/{:.0}", cell.fix_p50_us, cell.fix_p99_us),
            cell.cross_shard.to_string(),
            cell.envelopes_sent.to_string(),
        ]);
    }

    report(
        "ablate_trace",
        &format!(
            "Ablation: causal update tracing + phase accounting on RMAT{rmat_scale} \
             SSSP ({shards} shards, identical fixpoints verified per cell)"
        ),
        &[
            "Tracing",
            "Wall",
            "dWall",
            "Events/s",
            "Roots",
            "Trees",
            "AmpTotal",
            "Amp_p50/p99",
            "Fix_us_p50/p99",
            "XShard",
            "EnvSent",
        ],
        &rows,
    );
}
