//! Ablation — durability: WAL + checkpoints off / on / on-with-fsync.
//!
//! Durability is runtime-selectable (`EngineConfig::with_durability`) and
//! the default is off, so the data path must not pay for a feature nobody
//! asked for: with durability off the only added cost is one predictable
//! untaken branch per event. This harness prices the whole spectrum on
//! RMAT-14 SSSP over 8 shards:
//!
//! - `off`       — the engine default (`durability: None`); the cell the
//!   1% acceptance gate is asserted on, against an identically-configured
//!   `plain` reference run interleaved rep-by-rep.
//! - `wal`       — per-shard CRC-framed WAL + periodic dense-arena
//!   checkpoints, OS page cache only (`fsync(false)`).
//! - `wal-fsync` — the same with fsync batching on: the honest
//!   crash-consistent configuration `examples/durable_restart.rs` ships.
//!
//! Every cell must converge to the byte-identical SSSP fixpoint, the off
//! cell must record zero WAL records / bytes / checkpoints (durability off
//! does no durability work, not merely cheap work), and at full scale on
//! an uncontended box the off cell must stay within 1% wall clock of the
//! plain reference (min-of-reps on both sides to shed scheduler noise).
//! The on-cells' overhead is reported, not gated — it prices an fsync
//! policy choice, not a regression.
//!
//! Run: `cargo bench -p remo-bench --bench ablate_wal`

use std::path::PathBuf;
use std::time::Duration;

use remo_algos::IncSssp;
use remo_bench::*;
use remo_core::{DurabilityConfig, EngineConfig, VertexId, Weight};
use remo_gen::{stream, RmatConfig};
use remo_store::hash::mix64;

const SHARDS: usize = 8;

/// Durability-off acceptance ceiling vs the plain reference cell,
/// asserted at `scale >= 1.0` on boxes with a core per shard.
const OFF_OVERHEAD_CEILING: f64 = 1.01;

/// Weight derived from the endpoints only (symmetric), so duplicate and
/// reversed edges in the stream agree on the undirected edge's weight.
fn edge_weight(s: VertexId, d: VertexId) -> Weight {
    (mix64(s ^ d) % 15) + 1
}

enum Durability {
    Off,
    Wal { fsync: bool },
}

struct Cell {
    elapsed: Duration,
    events: u64,
    wal_records: u64,
    wal_bytes: u64,
    checkpoints: u64,
    states: Vec<(VertexId, u64)>,
}

fn cell_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("remo-ablate-wal-{}-{tag}", std::process::id()))
}

fn run_once(
    mode: &Durability,
    tag: &str,
    expected_vertices: usize,
    weighted: &[(VertexId, VertexId, Weight)],
    source: VertexId,
) -> Cell {
    let mut cfg = EngineConfig::undirected(SHARDS).with_expected_vertices(expected_vertices);
    let dir = cell_dir(tag);
    if let Durability::Wal { fsync } = mode {
        let _ = std::fs::remove_dir_all(&dir);
        cfg = cfg.with_durability(
            DurabilityConfig::new(&dir)
                .checkpoint_every(4096)
                .fsync(*fsync),
        );
    }
    let run = timed_run_weighted_with(IncSssp, cfg, weighted, &[source]);
    if matches!(mode, Durability::Wal { .. }) {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let total = run.result.metrics.total();
    Cell {
        elapsed: run.elapsed,
        events: total.events_processed(),
        wal_records: total.wal_records_appended,
        wal_bytes: total.wal_bytes,
        checkpoints: total.checkpoints_written,
        states: run.result.states.into_vec(),
    }
}

fn main() {
    let scale = bench_scale();
    let rmat_scale: u32 = (14 + (scale.log2().round() as i32).clamp(-6, 6)) as u32;
    let cfg = RmatConfig::graph500(rmat_scale);
    let mut edges = remo_gen::rmat::generate(&cfg);
    stream::shuffle(&mut edges, 61);
    let weighted: Vec<(VertexId, VertexId, Weight)> = edges
        .iter()
        .map(|&(s, d)| (s, d, edge_weight(s, d)))
        .collect();
    let source = edges[0].0;
    let expected_vertices = 1usize << rmat_scale;

    let grid: Vec<(&str, Durability)> = vec![
        ("plain", Durability::Off),
        ("off", Durability::Off),
        ("wal", Durability::Wal { fsync: false }),
        ("wal-fsync", Durability::Wal { fsync: true }),
    ];

    // Rep-major sweep keeping each cell's minimum wall-clock (see
    // ablate_coalescing: interleaving beats rep count against load
    // drift). Counters and states come from the final rep.
    let mut cells: Vec<Option<Cell>> = grid.iter().map(|_| None).collect();
    for _ in 0..bench_reps() {
        for (slot, (tag, mode)) in cells.iter_mut().zip(&grid) {
            let mut cell = run_once(mode, tag, expected_vertices, &weighted, source);
            if let Some(prev) = slot.take() {
                cell.elapsed = cell.elapsed.min(prev.elapsed);
            }
            *slot = Some(cell);
        }
    }
    let cells: Vec<Cell> = cells.into_iter().map(|c| c.expect("reps >= 1")).collect();
    let plain = &cells[0];
    let off = &cells[1];

    for ((tag, mode), cell) in grid.iter().zip(&cells) {
        assert_eq!(
            plain.states, cell.states,
            "{tag}: SSSP fixpoint diverged across durability modes"
        );
        match mode {
            Durability::Off => assert_eq!(
                (cell.wal_records, cell.wal_bytes, cell.checkpoints),
                (0, 0, 0),
                "{tag}: durability off must do zero durability work"
            ),
            Durability::Wal { .. } => {
                assert!(
                    cell.wal_records > 0 && cell.checkpoints > 0,
                    "{tag}: durable cell wrote no WAL/checkpoints"
                );
            }
        }
    }

    // Acceptance gate: the durability-off data path costs nothing. Guarded
    // like ablate_transport's telemetry gate — at smoke scales the runs are
    // too short to resolve 1%, and with fewer cores than shards the wall
    // delta measures the kernel scheduler, not the branch.
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let strict = std::env::var("REMO_BENCH_STRICT_WAL").as_deref() == Ok("1");
    if scale >= 1.0 && (cores >= SHARDS || strict) {
        let ratio = off.elapsed.as_secs_f64() / plain.elapsed.as_secs_f64().max(1e-9);
        assert!(
            ratio <= OFF_OVERHEAD_CEILING,
            "durability-off costs {:.2}% wall over the plain reference \
             (ceiling {:.0}%)",
            100.0 * (ratio - 1.0),
            100.0 * (OFF_OVERHEAD_CEILING - 1.0)
        );
    } else if scale >= 1.0 {
        eprintln!(
            "note: durability-off gate skipped ({cores} cores < {SHARDS} \
             shards; wall deltas would measure the scheduler)"
        );
    }

    let mut rows = Vec::new();
    for ((tag, _), cell) in grid.iter().zip(&cells) {
        let wall_delta = if std::ptr::eq(plain, cell) {
            "base".to_string()
        } else {
            format!(
                "{:+.1}%",
                100.0 * (cell.elapsed.as_secs_f64() - plain.elapsed.as_secs_f64())
                    / plain.elapsed.as_secs_f64().max(1e-9)
            )
        };
        let eps = cell.events as f64 / cell.elapsed.as_secs_f64().max(1e-9);
        rows.push(vec![
            tag.to_string(),
            fmt_dur(cell.elapsed),
            wall_delta,
            format!("{:.0}", eps),
            cell.wal_records.to_string(),
            format!("{:.2}", cell.wal_bytes as f64 / 1e6),
            cell.checkpoints.to_string(),
        ]);
    }

    report(
        "ablate_wal",
        &format!(
            "Ablation: durability (per-shard WAL + checkpoints) on RMAT{rmat_scale} \
             SSSP ({SHARDS} shards, identical fixpoints verified per cell)"
        ),
        &[
            "Durability",
            "Wall",
            "dWall",
            "Events/s",
            "WalRecs",
            "WalMB",
            "Ckpts",
        ],
        &rows,
    );
}
