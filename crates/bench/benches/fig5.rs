//! Figure 5 — events per second for each algorithm on each real-world
//! stand-in, across shard counts.
//!
//! For every dataset family (Friendster-, Twitter-, SK2005-, Webgraph-like)
//! and every algorithm {CON (construction only), BFS, SSSP, CC, S-T}, the
//! saturation event rate at each shard count.
//!
//! Paper shapes: CON is an upper bound and each algorithm costs only
//! modestly more ("the cost of maintaining an algorithm with observable
//! results during the construction had a low impact"); rates scale with
//! shard count; the per-dataset topology produces visibly different rates
//! ("a slightly different performance pattern for each dataset").
//!
//! Run: `cargo bench -p remo-bench --bench fig5`

use remo_algos::{IncBfs, IncCc, IncSssp, IncStCon};
use remo_bench::*;
use remo_gen::{stream, Dataset};

fn main() {
    let scale = bench_scale();
    let shard_list = shard_counts();
    let mut rows = Vec::new();

    for ds in Dataset::REAL_WORLD {
        let mut edges = ds.generate(scale * 0.5, 505);
        stream::shuffle(&mut edges, 6);
        let weighted = stream::with_weights(&edges, 100, 7);
        let source = edges[0].0;

        for algo_name in ["CON", "BFS", "SSSP", "CC", "S-T"] {
            let mut cells = vec![ds.name(), algo_name.to_string()];
            for &p in &shard_list {
                let rate = match algo_name {
                    "CON" => timed_run(ConstructionOnly, p, &edges, &[]).events_per_sec(),
                    "BFS" => timed_run(IncBfs, p, &edges, &[source]).events_per_sec(),
                    "SSSP" => timed_run_weighted(IncSssp, p, &weighted, &[source]).events_per_sec(),
                    "CC" => timed_run(IncCc, p, &edges, &[]).events_per_sec(),
                    "S-T" => timed_run(IncStCon::new(vec![source]), p, &edges, &[source])
                        .events_per_sec(),
                    _ => unreachable!(),
                };
                cells.push(fmt_rate(rate));
            }
            rows.push(cells);
        }
    }

    let mut header: Vec<String> = vec!["Dataset".into(), "Algorithm".into()];
    header.extend(shard_list.iter().map(|p| format!("{p} shard(s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    report(
        "fig5",
        "Figure 5: events/sec per dataset x algorithm x shard count",
        &header_refs,
        &rows,
    );
    println!(
        "\nShape checks vs the paper: CON >= each algorithm at the same shard\n\
         count; rates grow with shards; each dataset family has its own level."
    );
}
