//! §VI-A — "Why is this better than a batching solution?"
//!
//! Quantifies the discussion section's argument. A snapshot/batching system
//! answers queries only at batch boundaries, and each boundary costs a
//! full static recompute over the accumulated graph (we even grant it
//! in-memory topology, skipping the reload the paper notes it would pay).
//! The continuous system ingests the same stream once, keeps the answer
//! live the whole time, and discretizes on demand.
//!
//! For each batch count B:
//!   - batching: sum over batches of (CSR rebuild + static BFS);
//!   - continuous: one live-BFS ingestion + B on-the-fly snapshots;
//!   - answer latency: batching answers are stale by a full batch,
//!     continuous local state is always current.
//!
//! Run: `cargo bench -p remo-bench --bench discussion_batch`

use std::time::{Duration, Instant};

use remo_algos::IncBfs;
use remo_bench::*;
use remo_core::{Engine, EngineConfig};
use remo_gen::{stream, Dataset};

fn main() {
    let scale = bench_scale();
    let shards = *shard_counts().last().unwrap_or(&4);
    let mut edges = Dataset::TwitterLike.generate(scale * 0.5, 161);
    stream::shuffle(&mut edges, 8);
    let source = edges[0].0;
    println!(
        "Twitter-like stand-in: {} edge events, {} shards, BFS from {}",
        edges.len(),
        shards,
        source
    );

    let mut rows = Vec::new();
    for batches in [4usize, 16, 64] {
        // --- Batching/snapshotting solution ---
        let t0 = Instant::now();
        let chunk = edges.len() / batches;
        for b in 1..=batches {
            let hi = if b == batches { edges.len() } else { b * chunk };
            let build = remo_baseline::build_undirected(&edges[..hi]);
            let _levels = remo_baseline::bfs_levels(&build.csr, source);
        }
        let batch_total = t0.elapsed();

        // --- Continuous solution: same stream, live BFS, B snapshots ---
        let t0 = Instant::now();
        let mut engine = Engine::new(IncBfs, EngineConfig::undirected(shards));
        engine.try_init_vertex(source).unwrap();
        for b in 1..=batches {
            let lo = (b - 1) * chunk;
            let hi = if b == batches { edges.len() } else { b * chunk };
            engine.try_ingest_pairs(&edges[lo..hi]).unwrap();
            let _snap = engine.try_snapshot().unwrap();
        }
        engine.try_await_quiescence().unwrap();
        let continuous_total = t0.elapsed();
        let _ = engine.try_finish().unwrap();

        rows.push(vec![
            batches.to_string(),
            fmt_dur(batch_total),
            fmt_dur(continuous_total),
            format!(
                "{:.2}x",
                batch_total.as_secs_f64() / continuous_total.as_secs_f64().max(1e-9)
            ),
            fmt_dur(Duration::from_secs_f64(
                batch_total.as_secs_f64() / batches as f64 / 2.0,
            )),
            "continuous (local state)".into(),
        ]);
    }

    report(
        "discussion_batch",
        "Discussion (VI-A): batching/snapshotting vs continuous",
        &[
            "Batches",
            "Batch total",
            "Continuous total",
            "Batch/continuous",
            "Mean answer staleness (batch)",
            "Answer staleness (continuous)",
        ],
        &rows,
    );
    println!(
        "\nShape vs the paper: the batch solution's cost grows with the number\n\
         of discretization points (each is a full recompute over the grown\n\
         graph), while the continuous solution pays ingestion once and\n\
         cheap snapshots; its local state is queryable at every instant."
    );
}
