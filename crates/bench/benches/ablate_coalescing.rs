//! Ablation — redundant-work elimination in the messaging layer.
//!
//! The REMO lattice hooks enable three independent optimisations in the
//! shard hot loop: sender-side envelope coalescing, receiver-side dominance
//! filtering, and priority-aware draining of the update backlog. Each is
//! safe *only because* update processing is order-independent for monotone
//! algorithms (§II-B); this harness measures what each layer actually buys
//! on RMAT BFS and SSSP, and asserts the fixpoint is byte-identical to the
//! exact-FIFO baseline in every configuration.
//!
//! Run: `cargo bench -p remo-bench --bench ablate_coalescing`

use remo_algos::{IncBfs, IncSssp};
use remo_bench::*;
use remo_core::{EngineConfig, LatticeConfig, VertexId, Weight};
use remo_gen::{stream, RmatConfig};
use remo_store::hash::mix64;

const SHARDS: usize = 8;

fn layer_grid() -> Vec<(&'static str, LatticeConfig)> {
    let off = LatticeConfig::default();
    vec![
        ("fifo", off),
        (
            "+coalesce",
            LatticeConfig {
                coalesce: true,
                ..off
            },
        ),
        (
            "+dominance",
            LatticeConfig {
                dominance: true,
                ..off
            },
        ),
        (
            "+priority",
            LatticeConfig {
                priority: true,
                ..off
            },
        ),
        ("all-on", LatticeConfig::all()),
    ]
}

fn config(lattice: LatticeConfig) -> EngineConfig {
    EngineConfig {
        lattice,
        ..EngineConfig::undirected(SHARDS)
    }
}

/// Weight derived from the endpoints only (symmetric), so duplicate and
/// reversed edges in the stream agree — differing weights on the same edge
/// would make the SSSP fixpoint order-dependent regardless of coalescing.
fn edge_weight(s: VertexId, d: VertexId) -> Weight {
    (mix64(s ^ d) % 15) + 1
}

struct Cell {
    elapsed: std::time::Duration,
    events: u64,
    coalesced: u64,
    /// Receiver-side retires + sender-side self-route suppressions — the
    /// two halves of dominance filtering (split in `ShardMetrics` because
    /// only the former are counted as sent; see `verify_balance`).
    dominated: u64,
    suppressed: u64,
    reorders: u64,
    states: Vec<(VertexId, u64)>,
}

fn run_once(
    algo_name: &str,
    lattice: LatticeConfig,
    edges: &[(VertexId, VertexId)],
    weighted: &[(VertexId, VertexId, Weight)],
    source: VertexId,
) -> Cell {
    let run = match algo_name {
        "BFS" => timed_run_with(IncBfs, config(lattice), edges, &[source]),
        _ => timed_run_weighted_with(IncSssp, config(lattice), weighted, &[source]),
    };
    let m = run.result.metrics.total();
    Cell {
        elapsed: run.elapsed,
        events: m.events_processed(),
        coalesced: m.envelopes_coalesced,
        dominated: m.updates_dominated,
        suppressed: m.updates_suppressed,
        reorders: m.heap_reorders,
        states: run.result.states.into_vec(),
    }
}

/// Measures the whole layer grid `bench_reps()` times in rep-major order —
/// every configuration runs once per sweep before any runs again — keeping
/// each cell's minimum wall-clock. Interleaving matters more than rep count
/// here: machine-load drift between cells would otherwise dwarf the layer
/// effects being measured. Counts come from the final rep (they vary only
/// through benign races).
fn measure_grid(
    algo_name: &str,
    grid: &[(&'static str, LatticeConfig)],
    edges: &[(VertexId, VertexId)],
    weighted: &[(VertexId, VertexId, Weight)],
    source: VertexId,
) -> Vec<Cell> {
    let mut cells: Vec<Option<Cell>> = grid.iter().map(|_| None).collect();
    for _ in 0..bench_reps() {
        for (slot, &(_, lattice)) in cells.iter_mut().zip(grid) {
            let mut cell = run_once(algo_name, lattice, edges, weighted, source);
            if let Some(prev) = slot.take() {
                cell.elapsed = cell.elapsed.min(prev.elapsed);
            }
            *slot = Some(cell);
        }
    }
    cells.into_iter().map(|c| c.expect("reps >= 1")).collect()
}

fn main() {
    let scale = bench_scale();
    let rmat_scale: u32 = (14 + (scale.log2().round() as i32).clamp(-6, 6)) as u32;
    let cfg = RmatConfig::graph500(rmat_scale);
    let mut edges = remo_gen::rmat::generate(&cfg);
    stream::shuffle(&mut edges, 60);
    let weighted: Vec<(VertexId, VertexId, Weight)> = edges
        .iter()
        .map(|&(s, d)| (s, d, edge_weight(s, d)))
        .collect();
    let source = edges[0].0;

    let grid = layer_grid();
    let mut rows = Vec::new();
    for algo in ["BFS", "SSSP"] {
        let cells = measure_grid(algo, &grid, &edges, &weighted, source);
        let base = &cells[0];
        for ((layer, _), cell) in grid.iter().zip(&cells) {
            assert_eq!(
                base.states, cell.states,
                "{algo}/{layer}: lattice run diverged from FIFO fixpoint"
            );
            let (wall_delta, ev_delta) = if std::ptr::eq(base, cell) {
                ("base".to_string(), "base".to_string())
            } else {
                (
                    format!(
                        "{:+.1}%",
                        100.0 * (cell.elapsed.as_secs_f64() - base.elapsed.as_secs_f64())
                            / base.elapsed.as_secs_f64().max(1e-9)
                    ),
                    format!(
                        "{:+.1}%",
                        100.0 * (cell.events as f64 - base.events as f64)
                            / base.events.max(1) as f64
                    ),
                )
            };
            rows.push(vec![
                algo.to_string(),
                layer.to_string(),
                fmt_dur(cell.elapsed),
                wall_delta,
                cell.events.to_string(),
                ev_delta,
                cell.coalesced.to_string(),
                cell.dominated.to_string(),
                cell.suppressed.to_string(),
                cell.reorders.to_string(),
            ]);
        }
    }

    report(
        "ablate_coalescing",
        &format!(
            "Ablation: lattice coalescing/dominance/priority on RMAT{rmat_scale} \
             ({SHARDS} shards, identical fixpoints verified)"
        ),
        &[
            "Algo",
            "Layers",
            "Wall",
            "dWall",
            "Events",
            "dEvents",
            "Coalesced",
            "Dominated",
            "Suppressed",
            "Reorders",
        ],
        &rows,
    );
}
