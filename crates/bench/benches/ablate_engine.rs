//! Ablation: engine design choices (criterion).
//!
//! - Termination detection: global-counter vs Safra token ring — the cost
//!   of being faithfully shared-nothing.
//! - Snapshot machinery: ingestion with periodic on-the-fly snapshots vs
//!   none — the price of continuous global state collection (§III-D).
//! - Shard count on a fixed workload — the engine's strong-scaling knee at
//!   micro scale.

use criterion::{criterion_group, criterion_main, Criterion};

use remo_algos::{IncBfs, IncCc};
use remo_bench::{timed_run, ConstructionOnly};
use remo_core::{Engine, EngineConfig, SequentialEngine, TerminationMode};
use remo_gen::{stream, Dataset};

fn workload() -> Vec<(u64, u64)> {
    let mut edges = Dataset::ErdosRenyi.generate(0.05, 21);
    stream::shuffle(&mut edges, 2);
    edges
}

fn bench_termination(c: &mut Criterion) {
    let edges = workload();
    let source = edges[0].0;
    let mut g = c.benchmark_group("termination_mode");
    g.sample_size(10);
    for (name, mode) in [
        ("counter", TerminationMode::Counter),
        ("safra", TerminationMode::Safra),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let config = EngineConfig {
                    termination: mode,
                    ..EngineConfig::undirected(4)
                };
                let engine = Engine::new(IncBfs, config);
                engine.init_vertex(source);
                engine.ingest_pairs(&edges);
                engine.await_quiescence();
                engine.finish().num_edges
            })
        });
    }
    g.finish();
}

fn bench_snapshot_overhead(c: &mut Criterion) {
    let edges = workload();
    let mut g = c.benchmark_group("snapshot_overhead");
    g.sample_size(10);
    g.bench_function("no_snapshots", |b| {
        b.iter(|| {
            let engine = Engine::new(IncCc, EngineConfig::undirected(4));
            engine.ingest_pairs(&edges);
            engine.finish().num_edges
        })
    });
    g.bench_function("snapshot_every_quarter", |b| {
        b.iter(|| {
            let mut engine = Engine::new(IncCc, EngineConfig::undirected(4));
            let chunk = edges.len() / 4;
            for part in edges.chunks(chunk) {
                engine.ingest_pairs(part);
                let _ = engine.snapshot();
            }
            engine.finish().num_edges
        })
    });
    g.finish();
}

fn bench_shard_scaling(c: &mut Criterion) {
    let edges = workload();
    let mut g = c.benchmark_group("construction_shards");
    g.sample_size(10);
    for p in [1usize, 2, 4, 8] {
        g.bench_function(format!("p{p}"), |b| {
            b.iter(|| timed_run(ConstructionOnly, p, &edges, &[]).result.num_edges)
        });
    }
    g.finish();
}

fn bench_sequential_vs_concurrent(c: &mut Criterion) {
    // §II-A's architectural motivation: prior work's one-event-at-a-time
    // abstract machine vs the concurrent shared-nothing engine, running the
    // *same* Algorithm implementation.
    let edges = workload();
    let source = edges[0].0;
    let mut g = c.benchmark_group("execution_model");
    g.sample_size(10);
    g.bench_function("sequential_reference", |b| {
        b.iter(|| {
            let mut eng = SequentialEngine::undirected(IncBfs);
            eng.init_vertex(source);
            eng.apply_pairs(&edges);
            eng.num_edges()
        })
    });
    g.bench_function("concurrent_4_shards", |b| {
        b.iter(|| {
            let engine = Engine::new(IncBfs, EngineConfig::undirected(4));
            engine.init_vertex(source);
            engine.ingest_pairs(&edges);
            engine.finish().num_edges
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_termination,
    bench_snapshot_overhead,
    bench_shard_scaling,
    bench_sequential_vs_concurrent
);
criterion_main!(benches);
