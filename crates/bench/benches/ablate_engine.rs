//! Ablation: engine design choices (criterion).
//!
//! - Termination detection: global-counter vs Safra token ring — the cost
//!   of being faithfully shared-nothing.
//! - Snapshot machinery: ingestion with periodic on-the-fly snapshots vs
//!   none — the price of continuous global state collection (§III-D).
//! - Shard count on a fixed workload — the engine's strong-scaling knee at
//!   micro scale.
//! - Supervision overhead: a fault-free run under the supervised
//!   `Result`-returning API, with and without deadlines armed — the happy
//!   path must not pay for the failure machinery.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use remo_algos::{IncBfs, IncCc};
use remo_bench::{timed_run, ConstructionOnly};
use remo_core::{Engine, EngineConfig, SequentialEngine, TerminationMode};
use remo_gen::{stream, Dataset};

fn workload() -> Vec<(u64, u64)> {
    let mut edges = Dataset::ErdosRenyi.generate(0.05, 21);
    stream::shuffle(&mut edges, 2);
    edges
}

fn bench_termination(c: &mut Criterion) {
    let edges = workload();
    let source = edges[0].0;
    let mut g = c.benchmark_group("termination_mode");
    g.sample_size(10);
    for (name, mode) in [
        ("counter", TerminationMode::Counter),
        ("safra", TerminationMode::Safra),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let config = EngineConfig {
                    termination: mode,
                    ..EngineConfig::undirected(4)
                };
                let engine = Engine::new(IncBfs, config);
                engine.try_init_vertex(source).unwrap();
                engine.try_ingest_pairs(&edges).unwrap();
                engine.try_await_quiescence().unwrap();
                engine.try_finish().unwrap().num_edges
            })
        });
    }
    g.finish();
}

fn bench_snapshot_overhead(c: &mut Criterion) {
    let edges = workload();
    let mut g = c.benchmark_group("snapshot_overhead");
    g.sample_size(10);
    g.bench_function("no_snapshots", |b| {
        b.iter(|| {
            let engine = Engine::new(IncCc, EngineConfig::undirected(4));
            engine.try_ingest_pairs(&edges).unwrap();
            engine.try_finish().unwrap().num_edges
        })
    });
    g.bench_function("snapshot_every_quarter", |b| {
        b.iter(|| {
            let mut engine = Engine::new(IncCc, EngineConfig::undirected(4));
            let chunk = edges.len() / 4;
            for part in edges.chunks(chunk) {
                engine.try_ingest_pairs(part).unwrap();
                let _ = engine.try_snapshot().unwrap();
            }
            engine.try_finish().unwrap().num_edges
        })
    });
    g.finish();
}

fn bench_shard_scaling(c: &mut Criterion) {
    let edges = workload();
    let mut g = c.benchmark_group("construction_shards");
    g.sample_size(10);
    for p in [1usize, 2, 4, 8] {
        g.bench_function(format!("p{p}"), |b| {
            b.iter(|| timed_run(ConstructionOnly, p, &edges, &[]).result.num_edges)
        });
    }
    g.finish();
}

fn bench_sequential_vs_concurrent(c: &mut Criterion) {
    // §II-A's architectural motivation: prior work's one-event-at-a-time
    // abstract machine vs the concurrent shared-nothing engine, running the
    // *same* Algorithm implementation.
    let edges = workload();
    let source = edges[0].0;
    let mut g = c.benchmark_group("execution_model");
    g.sample_size(10);
    g.bench_function("sequential_reference", |b| {
        b.iter(|| {
            let mut eng = SequentialEngine::undirected(IncBfs);
            eng.init_vertex(source);
            eng.apply_pairs(&edges);
            eng.num_edges()
        })
    });
    g.bench_function("concurrent_4_shards", |b| {
        b.iter(|| {
            let engine = Engine::new(IncBfs, EngineConfig::undirected(4));
            engine.try_init_vertex(source).unwrap();
            engine.try_ingest_pairs(&edges).unwrap();
            engine.try_finish().unwrap().num_edges
        })
    });
    g.finish();
}

fn bench_supervision_overhead(c: &mut Criterion) {
    // The supervised API's happy path: every shard runs under
    // catch_unwind, every wait loop polls the failure board, and (in the
    // "deadlined" variant) checks a deadline. None of that may cost
    // anything observable on a healthy run — compare against each other
    // and against snapshot_overhead/no_snapshots above, which runs the
    // identical workload.
    let edges = workload();
    let mut g = c.benchmark_group("supervision_overhead");
    g.sample_size(10);
    g.bench_function("fault_free_no_deadlines", |b| {
        b.iter(|| {
            let engine = Engine::new(IncCc, EngineConfig::undirected(4));
            engine.try_ingest_pairs(&edges).unwrap();
            engine.try_await_quiescence().unwrap();
            engine.try_finish().unwrap().num_edges
        })
    });
    g.bench_function("fault_free_with_deadlines", |b| {
        b.iter(|| {
            let config = EngineConfig {
                quiescence_deadline: Some(Duration::from_secs(60)),
                query_deadline: Some(Duration::from_secs(60)),
                ..EngineConfig::undirected(4)
            };
            let engine = Engine::new(IncCc, config);
            engine.try_ingest_pairs(&edges).unwrap();
            engine.try_await_quiescence().unwrap();
            engine.try_finish().unwrap().num_edges
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_termination,
    bench_snapshot_overhead,
    bench_shard_scaling,
    bench_sequential_vs_concurrent,
    bench_supervision_overhead
);
criterion_main!(benches);
