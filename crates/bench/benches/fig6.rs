//! Figure 6 — strong and weak scaling on synthetic RMAT graphs with a
//! live BFS maintained during construction.
//!
//! Grid: RMAT scale (graph size) x shard count, cell = max event rate.
//!
//! Paper shapes: (strong scaling) for a fixed graph, doubling compute gives
//! a near doubling of the maximum event rate; (weak scaling) for a fixed
//! shard count, growing the graph does **not** significantly reduce the
//! event rate — "the size of the graph does not impact event processing
//! rate".
//!
//! Run: `cargo bench -p remo-bench --bench fig6`

use remo_algos::IncBfs;
use remo_bench::*;
use remo_gen::{stream, RmatConfig};

fn main() {
    let scale = bench_scale();
    let shard_list = shard_counts();
    let base: u32 = 12 + (scale.log2().round() as i32).clamp(-4, 8) as u32;
    let rmat_scales = [base, base + 1, base + 2];

    let mut rows = Vec::new();
    let mut rates: Vec<Vec<f64>> = Vec::new();
    for &s in &rmat_scales {
        let cfg = RmatConfig::graph500(s);
        let mut edges = remo_gen::rmat::generate(&cfg);
        stream::shuffle(&mut edges, 60);
        let source = edges[0].0;
        let mut cells = vec![format!("RMAT{s}"), edges.len().to_string()];
        let mut row_rates = Vec::new();
        for &p in &shard_list {
            let rate = timed_run(IncBfs, p, &edges, &[source]).events_per_sec();
            row_rates.push(rate);
            cells.push(fmt_rate(rate));
        }
        rates.push(row_rates);
        rows.push(cells);
    }

    let mut header: Vec<String> = vec!["Graph".into(), "#Edges".into()];
    header.extend(shard_list.iter().map(|p| format!("{p} shard(s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    report(
        "fig6",
        "Figure 6: RMAT scaling grid (events/sec, live BFS maintained)",
        &header_refs,
        &rows,
    );

    // Derived scaling summaries.
    if shard_list.len() >= 2 {
        let first = &rates[0];
        println!(
            "\nStrong scaling on RMAT{}: {:.2}x rate from {} to {} shards \
             (ideal {:.1}x)",
            rmat_scales[0],
            first.last().unwrap() / first.first().unwrap().max(1e-9),
            shard_list.first().unwrap(),
            shard_list.last().unwrap(),
            *shard_list.last().unwrap() as f64 / *shard_list.first().unwrap() as f64
        );
    }
    let col = shard_list.len() - 1;
    let weak_ratio = rates.last().unwrap()[col] / rates.first().unwrap()[col].max(1e-9);
    println!(
        "Weak scaling at {} shards: RMAT{} rate / RMAT{} rate = {:.2}x \
         (paper: graph size does not significantly impact the rate)",
        shard_list[col],
        rmat_scales.last().unwrap(),
        rmat_scales.first().unwrap(),
        weak_ratio
    );
}
