//! Figure 4 — on-the-fly global state collection vs. static recompute.
//!
//! Ingests an RMAT stream and, at fixed edge-count intervals (the
//! deterministic stand-in for the paper's 15-second wall-clock intervals,
//! DESIGN.md §3.4), measures three things:
//!
//! 1. **Snapshot latency, mid-flight**: request-to-complete time for a
//!    continuous snapshot issued while the interval's events are still
//!    being ingested (includes draining the in-flight backlog, §III-D).
//! 2. **Snapshot latency, at quiescence**: the pure protocol cost (epoch
//!    barrier + per-shard collection) with no backlog.
//! 3. **Static recompute**: a static BFS from scratch over the same
//!    topology, already resident in memory (the paper grants the static
//!    side its topology pre-loaded).
//!
//! Paper shape: collection latency stays roughly flat as the graph grows,
//! while the static recompute cost grows with the graph — the gap widens.
//!
//! Run: `cargo bench -p remo-bench --bench fig4`

use std::time::Instant;

use remo_algos::IncBfs;
use remo_bench::*;
use remo_core::{Engine, EngineConfig};
use remo_gen::{stream, RmatConfig};

fn main() {
    let scale = bench_scale();
    let shards = *shard_counts().last().unwrap_or(&4);
    let rmat_scale = 16 + (scale.log2().round() as i32).clamp(-6, 6);
    let cfg = RmatConfig::graph500(rmat_scale.max(8) as u32);
    let mut edges = remo_gen::rmat::generate(&cfg);
    stream::shuffle(&mut edges, 4);
    let source = edges[0].0;
    println!(
        "RMAT scale {} — {} edge events, {} shards, live BFS maintained",
        cfg.scale,
        edges.len(),
        shards
    );

    let intervals = 8usize;
    let chunk = edges.len() / intervals;
    let mut engine = Engine::new(IncBfs, EngineConfig::undirected(shards));
    engine.try_init_vertex(source).unwrap();

    let mut rows = Vec::new();
    for i in 0..intervals {
        let lo = i * chunk;
        let hi = if i + 1 == intervals {
            edges.len()
        } else {
            lo + chunk
        };
        engine.try_ingest_pairs(&edges[lo..hi]).unwrap();

        // (1) Mid-flight snapshot: the interval's events are still flowing.
        let t0 = Instant::now();
        let _snap_mid = engine.try_snapshot().unwrap();
        let lat_mid = t0.elapsed();

        // (2) Quiescent snapshot: pure collection cost at the boundary.
        engine.try_await_quiescence().unwrap();
        let t0 = Instant::now();
        let snap = engine.try_snapshot().unwrap();
        let lat_quiet = t0.elapsed();

        // (3) Static recompute on the same topology from scratch.
        let build = remo_baseline::build_undirected(&edges[..hi]);
        let t0 = Instant::now();
        let levels = remo_baseline::bfs_levels(&build.csr, source);
        let static_time = t0.elapsed();
        let reached = levels.iter().filter(|&&l| l != u64::MAX).count();
        let snap_reached = snap
            .iter()
            .filter(|(_, &l)| l != u64::MAX && l != 0)
            .count();
        assert_eq!(
            reached, snap_reached,
            "snapshot must equal the static result"
        );

        rows.push(vec![
            format!("{}", i + 1),
            hi.to_string(),
            fmt_dur(lat_mid),
            fmt_dur(lat_quiet),
            fmt_dur(static_time),
            format!(
                "{:.1}x",
                static_time.as_secs_f64() / lat_quiet.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    let _ = engine.try_finish().unwrap();

    report(
        "fig4",
        "Figure 4: snapshot latency vs static recompute, per interval",
        &[
            "Interval",
            "Edges so far",
            "Snapshot (mid-flight)",
            "Snapshot (quiescent)",
            "Static BFS from scratch",
            "Static/quiescent",
        ],
        &rows,
    );
    println!(
        "\nShape check vs the paper: collection latency stays flat while the\n\
         static recompute grows with |E|. (On a single-core host the\n\
         mid-flight latency includes OS scheduling of the backlog; the\n\
         quiescent column isolates the protocol cost.)"
    );
}
