//! Figure 7 — multi S-T connectivity: scaling the number of concurrent
//! sources, Twitter dataset.
//!
//! Sweeps the number of independent connectivity sources {0 (construction
//! only), 1, 2, 4, 8, 16, 32, 64} across shard counts and reports the
//! saturation event rate.
//!
//! Paper shapes: doubling shards nearly doubles the rate; "the first few
//! added sources do not greatly impact performance (from one source to two
//! induced less than a 10% cost), but the performance nearly halves after
//! doubling the set of sources" at the high end.
//!
//! Run: `cargo bench -p remo-bench --bench fig7`

use remo_algos::IncStCon;
use remo_bench::*;
use remo_gen::{stream, Dataset};

fn main() {
    let scale = bench_scale();
    let shard_list = shard_counts();
    let mut edges = Dataset::TwitterLike.generate(scale * 0.5, 707);
    stream::shuffle(&mut edges, 70);
    println!("Twitter-like stand-in: {} edge events", edges.len());

    // Deterministic well-spread source choices.
    let max_v = edges.iter().map(|&(a, b)| a.max(b)).max().unwrap_or(0) + 1;
    let all_sources: Vec<u64> = (0..64u64).map(|i| (i * 2_654_435_761) % max_v).collect();
    let source_counts = [0usize, 1, 2, 4, 8, 16, 32, 64];

    let mut rows = Vec::new();
    for &n in &source_counts {
        let sources = all_sources[..n].to_vec();
        let mut cells = vec![format!("{n} sources")];
        for &p in &shard_list {
            let rate = if n == 0 {
                timed_run(ConstructionOnly, p, &edges, &[]).events_per_sec()
            } else {
                timed_run(IncStCon::new(sources.clone()), p, &edges, &sources).events_per_sec()
            };
            cells.push(fmt_rate(rate));
        }
        rows.push(cells);
    }

    let mut header: Vec<String> = vec!["Configuration".into()];
    header.extend(shard_list.iter().map(|p| format!("{p} shard(s)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    report(
        "fig7",
        "Figure 7: multi S-T connectivity, events/sec vs source count",
        &header_refs,
        &rows,
    );
    println!(
        "\nShape checks vs the paper: near-linear gain with shard count; the\n\
         first sources are nearly free, large source sets cost progressively\n\
         more (set exchanges grow with bitmap density)."
    );
}
