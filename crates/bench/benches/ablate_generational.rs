//! Ablation: the cost of §VI-B generational deletions.
//!
//! "While deletion events done in this generational fashion may have a high
//! overhead, generally, the ratio of delete to add events is low" — this
//! bench quantifies that overhead. On a built graph it deletes a varying
//! fraction of edges and measures: the generational repair (GenCc's
//! self-healing flood / GenBfs's re-seeded flood) vs a full static
//! recompute of the remaining graph — the alternative a snapshotting system
//! would use.
//!
//! Run: `cargo bench -p remo-bench --bench ablate_generational`

use std::time::Instant;

use remo_algos::{GenBfs, GenCc};
use remo_bench::*;
use remo_core::{Engine, EngineConfig};
use remo_gen::{stream, Dataset};

fn main() {
    let scale = bench_scale();
    let shards = *shard_counts().last().unwrap_or(&4);
    // Small instance on purpose: GenCC's concurrent self-heal is
    // O(deletions x affected-component) — every delete event floods the
    // whole component (the cascade cost §VI-B warns about). The curve, not
    // the absolute size, is the point here.
    let mut edges = Dataset::SmallWorld.generate(scale * 0.02, 888);
    stream::shuffle(&mut edges, 5);
    let source = edges[0].0;
    println!(
        "SmallWorld stand-in: {} edges, {} shards",
        edges.len(),
        shards
    );

    let mut rows = Vec::new();
    for delete_pct in [1usize, 5, 20] {
        let step = 100 / delete_pct;
        let deletions: Vec<(u64, u64)> = edges.iter().step_by(step).copied().collect();

        // Generational BFS: delete, bump, re-seed, reconverge.
        let (algo, generation) = GenBfs::new();
        let engine = Engine::new(algo, EngineConfig::undirected(shards));
        engine.try_init_vertex(source).unwrap();
        engine.try_ingest_pairs(&edges).unwrap();
        engine.try_await_quiescence().unwrap();
        let t0 = Instant::now();
        engine.try_delete_pairs(&deletions).unwrap();
        engine.try_await_quiescence().unwrap();
        generation.bump();
        engine.try_init_vertex(source).unwrap();
        engine.try_await_quiescence().unwrap();
        let bfs_repair = t0.elapsed();
        drop(engine.try_finish().unwrap());

        // Generational CC: delete; the flood repairs itself.
        let engine = Engine::new(GenCc, EngineConfig::undirected(shards));
        engine.try_ingest_pairs(&edges).unwrap();
        engine.try_await_quiescence().unwrap();
        let t0 = Instant::now();
        engine.try_delete_pairs(&deletions).unwrap();
        engine.try_await_quiescence().unwrap();
        let cc_repair = t0.elapsed();
        drop(engine.try_finish().unwrap());

        // Static alternative: recompute BFS + CC over the remaining graph.
        let deleted: std::collections::HashSet<(u64, u64)> = deletions
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .collect();
        let remaining: Vec<(u64, u64)> = edges
            .iter()
            .filter(|&&(a, b)| !deleted.contains(&(a, b)))
            .copied()
            .collect();
        let t0 = Instant::now();
        let build = remo_baseline::build_undirected(&remaining);
        let _ = remo_baseline::bfs_levels(&build.csr, source);
        let _ = remo_baseline::components_min_label(&build.csr);
        let static_recompute = t0.elapsed();

        rows.push(vec![
            format!("{delete_pct}%"),
            deletions.len().to_string(),
            fmt_dur(bfs_repair),
            fmt_dur(cc_repair),
            fmt_dur(static_recompute),
        ]);
    }

    report(
        "ablate_generational",
        "Ablation: generational delete repair vs static recompute",
        &[
            "Deleted",
            "#Deletions",
            "GenBFS repair",
            "GenCC self-heal",
            "Static rebuild (BFS+CC)",
        ],
        &rows,
    );
    println!(
        "\nShape vs the paper's discussion: generational repair is worst-case a\n\
         full rewrite (the flood touches the whole affected component), so at\n\
         high delete ratios it approaches — and can exceed — the static\n\
         rebuild; at the low delete ratios real streams exhibit, it wins by\n\
         keeping the state live and the stream un-paused."
    );
}
