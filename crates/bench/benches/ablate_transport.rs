//! Ablation — data-plane transport: MPMC channel vs SPSC lane mesh.
//!
//! Every cross-shard envelope batch rides the transport. The seed path
//! pays an MPMC dequeue on a channel contended by P−1 senders plus the
//! controller, allocates a fresh `Vec<Envelope>` per `flush()`, and idles
//! on a fixed `recv_timeout` poll. The lane mesh gives each shard pair a
//! bounded lock-free SPSC ring (receive = uncontended per-lane poll),
//! recycles drained batch buffers back to their sender over per-pair
//! recycle lanes (steady-state `flush()` is allocation-free), and parks
//! idle shards until a sender unparks them. This harness prices that
//! choice end-to-end on RMAT BFS and SSSP, asserts the fixpoint is
//! byte-identical across transports in every cell, and reports the lane
//! counters (batches shipped, pool hit rate, full-lane fallbacks, wakeups)
//! alongside wall clock.
//!
//! At full scale the harness also asserts the steady-state recycle
//! invariant `batches_recycled / lane_batches >= 0.9` — the pool, not the
//! allocator, must be feeding the hot path — and the telemetry overhead
//! budget: the fully-instrumented lanes cell (counters + histograms +
//! flight recorder, the engine default) must stay within 2% wall clock of
//! an identical run with telemetry off.
//!
//! The grid also carries two adaptive-controller cells (`lanes-adapt`,
//! `channel-adapt`) whose fixpoints must stay byte-identical to the static
//! cells, plus two raw-speed gates (with a core per shard, or
//! `REMO_BENCH_STRICT_LANES=1`): lanes must hold wall-clock parity with
//! the channel transport per algorithm — BFS's short waves are what the
//! engine's flush hysteresis exists for — and the all-on adaptive cell
//! must not lose to the best static cell.
//!
//! Run: `cargo bench -p remo-bench --bench ablate_transport`

use std::time::Duration;

use remo_algos::{IncBfs, IncSssp};
use remo_bench::*;
use remo_core::{EngineConfig, PlacementPolicy, TelemetryConfig, TransportMode, VertexId, Weight};
use remo_gen::{stream, RmatConfig};
use remo_store::hash::mix64;

const SHARDS: usize = 8;

/// Full-telemetry overhead ceiling vs the telemetry-off lanes cell,
/// asserted at `scale >= 1.0`.
const TELEMETRY_OVERHEAD_CEILING: f64 = 1.02;

/// Grid cell: display name, transport, telemetry, adaptive controller,
/// shard placement.
type GridCell = (
    &'static str,
    TransportMode,
    TelemetryConfig,
    bool,
    PlacementPolicy,
);

fn transport_grid() -> Vec<GridCell> {
    vec![
        (
            "channel",
            TransportMode::Channel,
            TelemetryConfig::default(),
            false,
            PlacementPolicy::None,
        ),
        (
            "lanes",
            TransportMode::Lanes,
            TelemetryConfig::default(),
            false,
            PlacementPolicy::None,
        ),
        (
            "lanes-notel",
            TransportMode::Lanes,
            TelemetryConfig::off(),
            false,
            PlacementPolicy::None,
        ),
        (
            "lanes-adapt",
            TransportMode::Lanes,
            TelemetryConfig::default(),
            true,
            PlacementPolicy::None,
        ),
        (
            "channel-adapt",
            TransportMode::Channel,
            TelemetryConfig::default(),
            true,
            PlacementPolicy::None,
        ),
        // Placement cells ride at the end so the gate indices above stay
        // stable: same lanes data plane, shards pinned to cores.
        (
            "lanes-compact",
            TransportMode::Lanes,
            TelemetryConfig::default(),
            false,
            PlacementPolicy::Compact,
        ),
        (
            "lanes-scatter",
            TransportMode::Lanes,
            TelemetryConfig::default(),
            false,
            PlacementPolicy::Scatter,
        ),
    ]
}

fn config(
    transport: TransportMode,
    telemetry: TelemetryConfig,
    adaptive: bool,
    placement: PlacementPolicy,
    expected_vertices: usize,
) -> EngineConfig {
    let cfg = EngineConfig::undirected(SHARDS)
        .with_transport(transport)
        .with_telemetry(telemetry)
        .with_placement(placement)
        .with_expected_vertices(expected_vertices);
    if adaptive {
        cfg.with_adaptive()
    } else {
        cfg
    }
}

/// Weight derived from the endpoints only (symmetric), so duplicate and
/// reversed edges in the stream agree on the undirected edge's weight.
fn edge_weight(s: VertexId, d: VertexId) -> Weight {
    (mix64(s ^ d) % 15) + 1
}

struct Cell {
    elapsed: Duration,
    events: u64,
    lane_batches: u64,
    batches_recycled: u64,
    lane_full_fallbacks: u64,
    unparks: u64,
    adaptive_decisions: u64,
    states: Vec<(VertexId, u64)>,
}

#[allow(clippy::too_many_arguments)]
fn run_once(
    algo_name: &str,
    transport: TransportMode,
    telemetry: TelemetryConfig,
    adaptive: bool,
    placement: PlacementPolicy,
    expected_vertices: usize,
    edges: &[(VertexId, VertexId)],
    weighted: &[(VertexId, VertexId, Weight)],
    source: VertexId,
) -> Cell {
    let cfg = config(transport, telemetry, adaptive, placement, expected_vertices);
    let run = match algo_name {
        "BFS" => timed_run_with(IncBfs, cfg, edges, &[source]),
        _ => timed_run_weighted_with(IncSssp, cfg, weighted, &[source]),
    };
    let total = run.result.metrics.total();
    Cell {
        elapsed: run.elapsed,
        events: total.events_processed(),
        lane_batches: total.lane_batches,
        batches_recycled: total.batches_recycled,
        lane_full_fallbacks: total.lane_full_fallbacks,
        unparks: total.unparks,
        adaptive_decisions: total.adaptive_decisions,
        states: run.result.states.into_vec(),
    }
}

/// Rep-major sweep keeping each cell's minimum wall-clock (see
/// ablate_coalescing: interleaving beats rep count against load drift).
/// Counters and states come from the final rep.
fn measure_grid(
    algo_name: &str,
    grid: &[GridCell],
    expected_vertices: usize,
    edges: &[(VertexId, VertexId)],
    weighted: &[(VertexId, VertexId, Weight)],
    source: VertexId,
) -> Vec<Cell> {
    let mut cells: Vec<Option<Cell>> = grid.iter().map(|_| None).collect();
    for _ in 0..bench_reps() {
        for (slot, (_, transport, telemetry, adaptive, placement)) in cells.iter_mut().zip(grid) {
            let mut cell = run_once(
                algo_name,
                *transport,
                telemetry.clone(),
                *adaptive,
                placement.clone(),
                expected_vertices,
                edges,
                weighted,
                source,
            );
            if let Some(prev) = slot.take() {
                cell.elapsed = cell.elapsed.min(prev.elapsed);
            }
            *slot = Some(cell);
        }
    }
    cells.into_iter().map(|c| c.expect("reps >= 1")).collect()
}

fn main() {
    let scale = bench_scale();
    let rmat_scale: u32 = (14 + (scale.log2().round() as i32).clamp(-6, 6)) as u32;
    let cfg = RmatConfig::graph500(rmat_scale);
    let mut edges = remo_gen::rmat::generate(&cfg);
    stream::shuffle(&mut edges, 61);
    let weighted: Vec<(VertexId, VertexId, Weight)> = edges
        .iter()
        .map(|&(s, d)| (s, d, edge_weight(s, d)))
        .collect();
    let source = edges[0].0;
    let expected_vertices = 1usize << rmat_scale;

    let grid = transport_grid();
    let mut rows = Vec::new();
    for algo in ["BFS", "SSSP"] {
        let cells = measure_grid(algo, &grid, expected_vertices, &edges, &weighted, source);
        let base = &cells[0];
        // Acceptance gate: full telemetry (the `lanes` cell — engine
        // defaults) must cost at most 2% wall clock over the identical
        // run with telemetry compiled-in but switched off. Min-of-reps
        // wall clocks keep scheduler noise out of the comparison. Smoke
        // scales skip it (runs too short to resolve 2%), and so do boxes
        // without a core per shard: with 8 workers timesharing fewer
        // cores, inter-cell wall deltas measure the kernel scheduler,
        // not the instrumentation (observed swings of ±10% in both
        // directions on a 1-core container). `REMO_BENCH_STRICT_TELEMETRY=1`
        // forces the gate regardless.
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let strict = std::env::var("REMO_BENCH_STRICT_TELEMETRY").as_deref() == Ok("1");
        if scale >= 1.0 && (cores >= SHARDS || strict) {
            let on = &cells[1];
            let off = &cells[2];
            let ratio = on.elapsed.as_secs_f64() / off.elapsed.as_secs_f64().max(1e-9);
            assert!(
                ratio <= TELEMETRY_OVERHEAD_CEILING,
                "{algo}: full telemetry costs {:.1}% wall over telemetry-off \
                 (ceiling {:.0}%)",
                100.0 * (ratio - 1.0),
                100.0 * (TELEMETRY_OVERHEAD_CEILING - 1.0)
            );
        } else if scale >= 1.0 {
            eprintln!(
                "note: telemetry overhead gate skipped ({cores} cores < {SHARDS} \
                 shards; wall deltas would measure the scheduler)"
            );
        }
        // Raw-speed gates, same scheduler caveat as the telemetry gate:
        // only meaningful with a core per shard (force with
        // `REMO_BENCH_STRICT_LANES=1`).
        let strict_lanes = std::env::var("REMO_BENCH_STRICT_LANES").as_deref() == Ok("1");
        if scale >= 1.0 && (cores >= SHARDS || strict_lanes) {
            // Lanes must be at least at parity with the channel transport
            // per algorithm — the BFS short-wave regression this gate was
            // added for is what the flush hysteresis fixes.
            let channel = &cells[0];
            let lanes = &cells[1];
            let ratio = lanes.elapsed.as_secs_f64() / channel.elapsed.as_secs_f64().max(1e-9);
            assert!(
                ratio <= 1.02,
                "{algo}: lanes {:.1}% slower than channel (parity gate)",
                100.0 * (ratio - 1.0)
            );
            // The all-on adaptive cell must not lose to the best static
            // cell: adaptation has to pay for itself per algorithm.
            let adapt = &cells[3];
            let best_static = cells[..3]
                .iter()
                .map(|c| c.elapsed)
                .min()
                .expect("static cells");
            let ratio = adapt.elapsed.as_secs_f64() / best_static.as_secs_f64().max(1e-9);
            assert!(
                ratio <= 1.03,
                "{algo}: adaptive cell {:.1}% slower than best static cell",
                100.0 * (ratio - 1.0)
            );
            // Placement gate: with a core per shard, pinning shards to
            // cores (compact) must hold parity with the unpinned lanes
            // cell — placement has to pay for its affinity claim.
            let compact = &cells[5];
            let ratio = compact.elapsed.as_secs_f64() / lanes.elapsed.as_secs_f64().max(1e-9);
            assert!(
                ratio <= 1.02,
                "{algo}: compact placement {:.1}% slower than unpinned lanes",
                100.0 * (ratio - 1.0)
            );
        }
        for ((transport, mode, telemetry, adaptive, placement), cell) in grid.iter().zip(&cells) {
            assert_eq!(
                base.states, cell.states,
                "{algo}/{transport}: fixpoint diverged across transports"
            );
            match mode {
                TransportMode::Channel => assert_eq!(
                    cell.lane_batches, 0,
                    "{algo}/{transport}: channel mode must not touch lanes"
                ),
                TransportMode::Lanes => {
                    assert!(
                        cell.lane_batches > 0,
                        "{algo}/{transport}: lane mode shipped no lane batches"
                    );
                    let ratio = cell.batches_recycled as f64 / cell.lane_batches as f64;
                    // At smoke scale a run is over before the pool warms up;
                    // only the committed full-scale artifact asserts it.
                    if scale >= 1.0 {
                        assert!(
                            ratio >= 0.9,
                            "{algo}/{transport}: pool hit rate {ratio:.3} below steady-state floor"
                        );
                    }
                }
            }
            let wall_delta = if std::ptr::eq(base, cell) {
                "base".to_string()
            } else {
                format!(
                    "{:+.1}%",
                    100.0 * (cell.elapsed.as_secs_f64() - base.elapsed.as_secs_f64())
                        / base.elapsed.as_secs_f64().max(1e-9)
                )
            };
            let recycle_rate = if cell.lane_batches == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.1}%",
                    100.0 * cell.batches_recycled as f64 / cell.lane_batches as f64
                )
            };
            rows.push(vec![
                algo.to_string(),
                transport.to_string(),
                if telemetry.counters { "on" } else { "off" }.to_string(),
                if *adaptive { "on" } else { "off" }.to_string(),
                placement.to_string(),
                fmt_dur(cell.elapsed),
                wall_delta,
                cell.events.to_string(),
                cell.lane_batches.to_string(),
                recycle_rate,
                cell.lane_full_fallbacks.to_string(),
                cell.unparks.to_string(),
                cell.adaptive_decisions.to_string(),
            ]);
        }
    }

    report(
        "ablate_transport",
        &format!(
            "Ablation: data-plane transport on RMAT{rmat_scale} \
             ({SHARDS} shards, identical fixpoints verified per cell)"
        ),
        &[
            "Algo",
            "Transport",
            "Telemetry",
            "Adapt",
            "Placement",
            "Wall",
            "dWall",
            "Events",
            "LaneB",
            "Recycle",
            "Fallb",
            "Unparks",
            "Decisions",
        ],
        &rows,
    );
}
