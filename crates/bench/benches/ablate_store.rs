//! Ablation — shard vertex-storage layout: dense arena vs rhh-record.
//!
//! The shard hot path resolves its target vertex on every envelope. The
//! seed layout pays one Robin Hood probe into a map of fat records
//! (state + fork + adjacency header in the slot); the dense layout interns
//! the vertex id once into a `u32` and direct-indexes structure-of-arrays
//! slabs thereafter, keeping live states and packed meta contiguous for
//! the collection sweeps. This harness prices that choice end-to-end on
//! RMAT BFS and SSSP, asserts the fixpoint is byte-identical across
//! layouts in every cell, and reports the engine's own store footprint as
//! bytes per stored directed edge plus the process peak RSS.
//!
//! A micro table (Robin Hood map vs `std::collections::HashMap` on integer
//! keys) is printed for context but not persisted — the committed artifact
//! is the end-to-end layout grid.
//!
//! Run: `cargo bench -p remo-bench --bench ablate_store`

use std::time::{Duration, Instant};

use remo_algos::{IncBfs, IncSssp};
use remo_bench::*;
use remo_core::{EngineConfig, StorageLayout, VertexId, Weight};
use remo_gen::{stream, RmatConfig};
use remo_store::hash::mix64;
use remo_store::RhhMap;

const SHARDS: usize = 8;

fn store_grid() -> Vec<(&'static str, StorageLayout)> {
    vec![
        ("rhh-record", StorageLayout::RhhRecord),
        ("dense-arena", StorageLayout::DenseArena),
    ]
}

fn config(layout: StorageLayout, expected_vertices: usize) -> EngineConfig {
    EngineConfig::undirected(SHARDS)
        .with_storage(layout)
        .with_expected_vertices(expected_vertices)
}

/// Weight derived from the endpoints only (symmetric), so duplicate and
/// reversed edges in the stream agree on the undirected edge's weight.
fn edge_weight(s: VertexId, d: VertexId) -> Weight {
    (mix64(s ^ d) % 15) + 1
}

struct Cell {
    elapsed: Duration,
    events: u64,
    store_bytes: usize,
    num_edges: u64,
    /// Process high-water mark observed right after this cell's run. The
    /// HWM is monotone across the process, so only the first cell to reach
    /// a plateau "pays" it — read the column in run order (rep 1, grid
    /// order), not as an independent per-cell cost.
    peak_rss: u64,
    states: Vec<(VertexId, u64)>,
}

fn run_once(
    algo_name: &str,
    layout: StorageLayout,
    expected_vertices: usize,
    edges: &[(VertexId, VertexId)],
    weighted: &[(VertexId, VertexId, Weight)],
    source: VertexId,
) -> Cell {
    let cfg = config(layout, expected_vertices);
    let run = match algo_name {
        "BFS" => timed_run_with(IncBfs, cfg, edges, &[source]),
        _ => timed_run_weighted_with(IncSssp, cfg, weighted, &[source]),
    };
    Cell {
        elapsed: run.elapsed,
        events: run.result.metrics.total().events_processed(),
        store_bytes: run.result.store_bytes,
        num_edges: run.result.num_edges,
        peak_rss: peak_rss_bytes().unwrap_or(0),
        states: run.result.states.into_vec(),
    }
}

/// Rep-major sweep keeping each cell's minimum wall-clock (see
/// ablate_coalescing: interleaving beats rep count against load drift).
/// Footprints and states come from the final rep.
fn measure_grid(
    algo_name: &str,
    grid: &[(&'static str, StorageLayout)],
    expected_vertices: usize,
    edges: &[(VertexId, VertexId)],
    weighted: &[(VertexId, VertexId, Weight)],
    source: VertexId,
) -> Vec<Cell> {
    let mut cells: Vec<Option<Cell>> = grid.iter().map(|_| None).collect();
    for _ in 0..bench_reps() {
        for (slot, &(_, layout)) in cells.iter_mut().zip(grid) {
            let mut cell = run_once(
                algo_name,
                layout,
                expected_vertices,
                edges,
                weighted,
                source,
            );
            if let Some(prev) = slot.take() {
                cell.elapsed = cell.elapsed.min(prev.elapsed);
                cell.peak_rss = cell.peak_rss.min(prev.peak_rss);
            }
            *slot = Some(cell);
        }
    }
    cells.into_iter().map(|c| c.expect("reps >= 1")).collect()
}

/// Context micro-benchmark: the interning table's Robin Hood map against
/// `std`'s SipHash map on the same mixed integer keys. Printed only.
fn micro_map_table() {
    let keys: Vec<u64> = (0..100_000u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let reps = bench_reps();

    let mut rhh_insert = Duration::MAX;
    let mut std_insert = Duration::MAX;
    let mut rhh_get = Duration::MAX;
    let mut std_get = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let mut m = RhhMap::<u64, u64>::new();
        for &k in &keys {
            m.insert(k, k);
        }
        rhh_insert = rhh_insert.min(t.elapsed());
        let t = Instant::now();
        let mut acc = 0u64;
        for &k in &keys {
            acc = acc.wrapping_add(*m.get(k).unwrap());
        }
        rhh_get = rhh_get.min(t.elapsed());
        std::hint::black_box(acc);

        let t = Instant::now();
        let mut m = std::collections::HashMap::<u64, u64>::new();
        for &k in &keys {
            m.insert(k, k);
        }
        std_insert = std_insert.min(t.elapsed());
        let t = Instant::now();
        let mut acc = 0u64;
        for &k in &keys {
            acc = acc.wrapping_add(*m.get(&k).unwrap());
        }
        std_get = std_get.min(t.elapsed());
        std::hint::black_box(acc);
    }

    print_table(
        "Context: RhhMap vs std HashMap, 100k integer keys (not persisted)",
        &["Map", "Insert", "Get"],
        &[
            vec!["rhh".to_string(), fmt_dur(rhh_insert), fmt_dur(rhh_get)],
            vec![
                "std_hashmap".to_string(),
                fmt_dur(std_insert),
                fmt_dur(std_get),
            ],
        ],
    );
}

fn main() {
    micro_map_table();

    let scale = bench_scale();
    let rmat_scale: u32 = (14 + (scale.log2().round() as i32).clamp(-6, 6)) as u32;
    let cfg = RmatConfig::graph500(rmat_scale);
    let mut edges = remo_gen::rmat::generate(&cfg);
    stream::shuffle(&mut edges, 61);
    let weighted: Vec<(VertexId, VertexId, Weight)> = edges
        .iter()
        .map(|&(s, d)| (s, d, edge_weight(s, d)))
        .collect();
    let source = edges[0].0;
    // The capacity hint benches advertise: RMAT scale = log2(vertex count).
    let expected_vertices = 1usize << rmat_scale;

    let grid = store_grid();
    let mut rows = Vec::new();
    for algo in ["BFS", "SSSP"] {
        let cells = measure_grid(algo, &grid, expected_vertices, &edges, &weighted, source);
        let base = &cells[0];
        for ((store, _), cell) in grid.iter().zip(&cells) {
            assert_eq!(
                base.states, cell.states,
                "{algo}/{store}: fixpoint diverged across storage layouts"
            );
            let wall_delta = if std::ptr::eq(base, cell) {
                "base".to_string()
            } else {
                format!(
                    "{:+.1}%",
                    100.0 * (cell.elapsed.as_secs_f64() - base.elapsed.as_secs_f64())
                        / base.elapsed.as_secs_f64().max(1e-9)
                )
            };
            let bytes_per_edge = cell.store_bytes as f64 / (cell.num_edges.max(1) as f64);
            rows.push(vec![
                algo.to_string(),
                store.to_string(),
                fmt_dur(cell.elapsed),
                wall_delta,
                cell.events.to_string(),
                format!("{bytes_per_edge:.1}"),
                fmt_bytes(cell.peak_rss),
            ]);
        }
    }

    report(
        "ablate_store",
        &format!(
            "Ablation: vertex-storage layout on RMAT{rmat_scale} \
             ({SHARDS} shards, identical fixpoints verified per cell)"
        ),
        &[
            "Algo", "Store", "Wall", "dWall", "Events", "B/edge", "PeakRSS",
        ],
        &rows,
    );
}
