//! Ablation: storage-layer design choices (criterion).
//!
//! Quantifies the decisions DESIGN.md calls out for the DegAwareRHH-style
//! store:
//! - Robin Hood map vs `std::collections::HashMap` (SipHash) for integer
//!   keys — the open-addressing + fast-mix choice;
//! - compact-array vs promoted-table adjacency at low degree — the
//!   degree-aware split;
//! - spill/restore round-trip cost — the out-of-core tier;
//! - cache-suppressed vs plain incremental BFS — the per-edge neighbour
//!   value cache of Algorithm 3.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use remo_algos::{IncBfs, IncBfsSuppressed};
use remo_bench::timed_run;
use remo_gen::{stream, Dataset};
use remo_store::{Adjacency, EdgeMeta, RhhMap, SpillStore};

fn bench_maps(c: &mut Criterion) {
    let keys: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();

    let mut g = c.benchmark_group("map_insert_10k");
    g.bench_function("rhh", |b| {
        b.iter_batched(
            RhhMap::<u64, u64>::new,
            |mut m| {
                for &k in &keys {
                    m.insert(k, k);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("std_hashmap", |b| {
        b.iter_batched(
            std::collections::HashMap::<u64, u64>::new,
            |mut m| {
                for &k in &keys {
                    m.insert(k, k);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();

    let mut rhh = RhhMap::new();
    let mut std_map = std::collections::HashMap::new();
    for &k in &keys {
        rhh.insert(k, k);
        std_map.insert(k, k);
    }
    let mut g = c.benchmark_group("map_get_10k");
    g.bench_function("rhh", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc = acc.wrapping_add(*rhh.get(black_box(k)).unwrap());
            }
            acc
        })
    });
    g.bench_function("std_hashmap", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc = acc.wrapping_add(*std_map.get(&black_box(k)).unwrap());
            }
            acc
        })
    });
    g.finish();
}

fn bench_adjacency(c: &mut Criterion) {
    // Lookup at degree 16 (compact) vs degree 64 (promoted).
    let mut compact = Adjacency::new();
    for i in 0..16u64 {
        compact.insert(i, EdgeMeta::unweighted());
    }
    assert!(!compact.is_promoted());
    let mut table = Adjacency::new();
    for i in 0..64u64 {
        table.insert(i, EdgeMeta::unweighted());
    }
    assert!(table.is_promoted());

    let mut g = c.benchmark_group("adjacency_lookup");
    g.bench_function("compact_deg16", |b| {
        b.iter(|| compact.get(black_box(13)).map(|m| m.weight))
    });
    g.bench_function("table_deg64", |b| {
        b.iter(|| table.get(black_box(13)).map(|m| m.weight))
    });
    g.finish();

    let mut g = c.benchmark_group("adjacency_scan");
    g.bench_function("compact_deg16", |b| {
        b.iter(|| compact.iter().map(|(n, _)| n).sum::<u64>())
    });
    g.bench_function("table_deg64", |b| {
        b.iter(|| table.iter().map(|(n, _)| n).sum::<u64>())
    });
    g.finish();
}

fn bench_spill(c: &mut Criterion) {
    let mut adj = Adjacency::new();
    for i in 0..256u64 {
        adj.insert(i, EdgeMeta::weighted(i));
    }
    c.bench_function("spill_roundtrip_deg256", |b| {
        let mut store = SpillStore::new_temp().unwrap();
        b.iter(|| {
            let h = store.spill(&adj).unwrap();
            let back = store.restore(&h).unwrap();
            store.release(h);
            black_box(back.degree())
        })
    });
}

fn bench_cache_suppression(c: &mut Criterion) {
    let mut edges = Dataset::TwitterLike.generate(0.05, 9);
    stream::shuffle(&mut edges, 3);
    let source = edges[0].0;

    let mut g = c.benchmark_group("bfs_cache_suppression");
    g.sample_size(10);
    g.bench_function("plain", |b| {
        b.iter(|| {
            timed_run(IncBfs, 4, &edges, &[source])
                .result
                .metrics
                .total()
                .update_events
        })
    });
    g.bench_function("suppressed", |b| {
        b.iter(|| {
            timed_run(IncBfsSuppressed, 4, &edges, &[source])
                .result
                .metrics
                .total()
                .update_events
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_maps,
    bench_adjacency,
    bench_spill,
    bench_cache_suppression
);
criterion_main!(benches);
