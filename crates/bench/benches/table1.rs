//! Table I — graphs used in experiments.
//!
//! Regenerates the paper's dataset-inventory table for the laptop-scale
//! stand-ins (DESIGN.md §3.3 documents the substitution). Columns mirror
//! the paper: name, #Vertices, #Edges, on-disk size of the raw
//! `[src, dst]` pair stream. RMAT rows state the Graph500 relationship
//! (|E| = |V| * 16) exactly as Table I does.
//!
//! Run: `cargo bench -p remo-bench --bench table1`

use remo_bench::{bench_scale, report};
use remo_gen::{table_row, Dataset};

fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KB", b as f64 / (1u64 << 10) as f64)
    }
}

fn main() {
    let scale = bench_scale();
    let datasets = [
        Dataset::FriendsterLike,
        Dataset::TwitterLike,
        Dataset::Sk2005Like,
        Dataset::WebgraphLike,
        Dataset::Rmat(14),
        Dataset::Rmat(16),
        Dataset::ErdosRenyi,
        Dataset::SmallWorld,
    ];
    let rows: Vec<Vec<String>> = datasets
        .iter()
        .map(|&ds| {
            let row = table_row(ds, scale, 0x7ab1e);
            vec![
                row.name,
                row.vertices.to_string(),
                row.edges.to_string(),
                human_bytes(row.on_disk_bytes),
            ]
        })
        .collect();
    report(
        "table1",
        &format!("Table I stand-ins (scale x{scale})"),
        &["Name", "#Vertices", "#Edges", "OnDiskSpace"],
        &rows,
    );
    println!(
        "\nRMAT graphs use Graph500 parameters (A=0.57 B=0.19 C=0.19) with a\n\
         16x undirected (32x directed) edge factor, as in the paper."
    );
}
