//! Sustained-ingest headline bench: a continuous RMAT delta stream driven
//! in waves against a live engine, reporting the sustained topology-update
//! rate and the ingest→fixpoint latency distribution.
//!
//! Unlike the saturation benches (which ingest one pre-randomized stream
//! and time a single run to quiescence), this models the paper's on-line
//! serving story: deltas keep arriving in bursts while the algorithm state
//! is continuously queryable, and what matters is (a) how many updates per
//! second the engine sustains across the whole session and (b) how long
//! after each burst the state is at fixpoint again. Every wave is
//! `try_ingest_pairs(chunk)` followed by `try_await_quiescence()`, which
//! arms/settles the engine's ingest→fixpoint histogram once per wave; the
//! committed `BENCH_sustained_ingest.json` carries p50/p99/p999 of that
//! histogram next to the sustained updates/s.
//!
//! Usage: `cargo run --release -p remo-bench --bin sustained_ingest`.
//! `REMO_BENCH_SCALE` scales the stream (default 1.0 ≈ 524k directed
//! updates), `REMO_BENCH_SHARDS` picks the shard count (last entry wins),
//! `REMO_BENCH_WAVES` the number of delta bursts (default 64).

use std::time::{Duration, Instant};

use remo_algos::{IncBfs, IncSssp};
use remo_bench::*;
use remo_core::{Algorithm, Engine, EngineConfig, PlacementPolicy, RunResult, VertexId as Vid};
use remo_gen::rmat::{self, RmatConfig};
use remo_gen::VertexId;

fn waves() -> usize {
    std::env::var("REMO_BENCH_WAVES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(64)
}

struct WaveRun<S> {
    result: RunResult<S>,
    elapsed: Duration,
    updates: u64,
    /// Per-shard pinned core from the telemetry gauges just before
    /// harvest (−1 = unpinned), so the committed artifact records where
    /// each shard actually sat.
    pinned_cores: Vec<i64>,
}

/// Drives `engine` through `waves` ingest→fixpoint bursts over `edges`.
fn drive<A: Algorithm>(
    engine: Engine<A>,
    edges: &[(VertexId, VertexId)],
    waves: usize,
    weighted: bool,
) -> WaveRun<A::State> {
    let chunk = edges.len().div_ceil(waves).max(1);
    let start = Instant::now();
    for delta in edges.chunks(chunk) {
        if weighted {
            let w: Vec<(VertexId, VertexId, u64)> = delta
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| (s, d, (i as u64 % 16) + 1))
                .collect();
            engine.try_ingest_weighted(&w).unwrap();
        } else {
            engine.try_ingest_pairs(delta).unwrap();
        }
        engine.try_await_quiescence().unwrap();
    }
    let elapsed = start.elapsed();
    let pinned_cores = engine.telemetry().gauges().pinned_core;
    let result = engine.try_finish().unwrap();
    note_service(&result.metrics.service);
    note_ingest(elapsed, &result.metrics.total());
    WaveRun {
        updates: result.metrics.total().topo_ingested,
        result,
        elapsed,
        pinned_cores,
    }
}

/// The harvested fixpoint in comparable form: placement cells of the same
/// algorithm must agree byte for byte (pinning is a physical choice).
fn fixvec<S: Clone>(run: &WaveRun<S>) -> Vec<(Vid, S)> {
    run.result.states.iter().map(|(v, s)| (v, s.clone())).collect()
}

/// Render the pinned-core gauge vector: "unpinned" when no shard has a
/// seat, else the comma-joined core list.
fn fmt_pins(pins: &[i64]) -> String {
    if pins.iter().all(|&c| c < 0) {
        "unpinned".to_string()
    } else {
        pins.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn row<S>(
    algo: &str,
    placement: &PlacementPolicy,
    shards: usize,
    waves: usize,
    run: &WaveRun<S>,
) -> Vec<String> {
    let ups = run.updates as f64 / run.elapsed.as_secs_f64().max(1e-9);
    let fx = &run.result.metrics.ingest_fixpoint;
    let (p50, p99, p999) = fx.quantiles_us();
    let t = run.result.metrics.total();
    vec![
        algo.to_string(),
        placement.to_string(),
        fmt_pins(&run.pinned_cores),
        shards.to_string(),
        waves.to_string(),
        run.updates.to_string(),
        fmt_dur(run.elapsed),
        fmt_rate(ups),
        format!("{p50:.0}"),
        format!("{p99:.0}"),
        format!("{p999:.0}"),
        t.adaptive_decisions.to_string(),
        t.lane_cross_node_batches.to_string(),
    ]
}

fn main() {
    // SCALE 1.0 ≈ 2^14 vertices × 16 directed edges each, truncated by the
    // multiplier so CI can run the same binary at SCALE 0.1.
    let cfg = RmatConfig::graph500(14);
    let mut edges = rmat::generate(&cfg);
    let keep = ((edges.len() as f64 * bench_scale()) as usize).clamp(1, edges.len());
    edges.truncate(keep);
    let shards = shard_counts().last().copied().unwrap_or(2);
    let waves = waves();
    println!(
        "sustained ingest: {} updates in {waves} waves at {shards} shard(s)",
        edges.len()
    );

    let source = edges[0].0;
    let topo = remo_core::placement::host();
    println!(
        "host: {} cpu(s), {} numa node(s){}",
        topo.num_cpus(),
        topo.nodes,
        if topo.from_sysfs { "" } else { " (fallback topology)" }
    );
    let placements = [
        PlacementPolicy::None,
        PlacementPolicy::Compact,
        PlacementPolicy::Scatter,
    ];
    let mut rows = Vec::new();

    // Each algorithm runs one cell per placement policy; the unpinned cell
    // is the semantic reference — every pinned cell must land on the
    // byte-identical fixpoint (placement is a physical choice only).
    macro_rules! cells {
        ($label:expr, $make:expr, $init:expr, $weighted:expr) => {{
            let mut reference: Option<Vec<(Vid, _)>> = None;
            for placement in &placements {
                let config = EngineConfig::undirected(shards)
                    .with_adaptive()
                    .with_placement(placement.clone());
                let engine = Engine::new($make, config);
                if let Some(v) = $init {
                    engine.try_init_vertex(v).unwrap();
                }
                let run = drive(engine, &edges, waves, $weighted);
                let fix = fixvec(&run);
                match &reference {
                    None => reference = Some(fix),
                    Some(want) => assert_eq!(
                        want,
                        &fix,
                        "{} fixpoint diverged under {placement} placement",
                        $label
                    ),
                }
                rows.push(row($label, placement, shards, waves, &run));
            }
        }};
    }

    cells!("con", ConstructionOnly, None::<Vid>, false);
    cells!("bfs", IncBfs, Some(source), false);
    cells!("sssp", IncSssp, Some(source), true);

    report(
        "sustained_ingest",
        "Sustained ingest: RMAT delta waves to fixpoint (adaptive on)",
        &[
            "algo",
            "placement",
            "pinned_cores",
            "shards",
            "waves",
            "updates",
            "elapsed",
            "updates_per_sec",
            "fixpoint_p50_us",
            "fixpoint_p99_us",
            "fixpoint_p999_us",
            "adaptive_decisions",
            "cross_node_batches",
        ],
        &rows,
    );
}
