//! Marginal-query headline bench: what does the Nth live query cost?
//!
//! The registry's pitch (DESIGN.md §17) is "N live queries for ~1× the
//! topology cost": the shared adjacency is built once no matter how many
//! queries watch it, so each additional query pays only its own
//! propagation. This bench measures that directly on an RMAT-14 stream at
//! 8 shards, growing the live-query mix 1 → 2 → 4 → 8
//! (BFS / CC / SSSP / degree, rotating sources), with three checks:
//!
//! 1. **Identity** (asserted every cell, every rep): each query's
//!    projected column equals its solo-run fixpoint byte for byte.
//! 2. **Marginal cost**: the wall cost of adding the 2nd query
//!    (`reg-2` − `reg-1`) must be ≤ 40% of that query's solo wall — the
//!    shared topology work is not paid twice.
//! 3. **Attach vs re-ingest**: with 7 queries live and the stream fully
//!    ingested, attaching the 8th query live (prime + flood backfill
//!    inside the shards, DESIGN.md §17) must reach its fixpoint ≥ 2×
//!    faster than the alternative an operator actually has without live
//!    attach: tearing the engine down and re-ingesting the whole stream
//!    with all 8 queries attached (the `reg-8` cell).
//!
//! All wall cells run rep-major interleaved, keeping each cell's minimum
//! (see ablate_coalescing: interleaving beats rep count against load
//! drift). The two wall gates are guarded like ablate_wal's: they need
//! full scale and at least as many cores as shards — on a loaded or
//! 1-core box the deltas measure the kernel scheduler, not the registry —
//! and `REMO_BENCH_STRICT_QUERY=1` forces them on.
//!
//! Usage: `cargo run --release -p remo-bench --bin marginal_query`.
//! `REMO_BENCH_SCALE` scales the stream (CI smokes at 0.1),
//! `REMO_BENCH_SHARDS` picks the shard count (last entry wins, default 8),
//! `REMO_BENCH_REPS` the rep count.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use remo_algos::{DegreeCount, IncBfs, IncCc, IncSssp};
use remo_bench::*;
use remo_core::{
    Algorithm, Engine, EngineConfig, QueryId, QueryRegistry, VertexId as Vid, Weight,
};
use remo_gen::rmat::{self, RmatConfig};
use remo_gen::stream;

/// One query in the mix. Sources rotate so duplicate algorithm kinds in
/// the 8-query mix are still distinct queries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Spec {
    Bfs(Vid),
    Cc,
    Sssp(Vid),
    Deg,
}

impl Spec {
    fn label(&self) -> String {
        match self {
            Spec::Bfs(s) => format!("bfs@{s}"),
            Spec::Cc => "cc".to_string(),
            Spec::Sssp(s) => format!("sssp@{s}"),
            Spec::Deg => "deg".to_string(),
        }
    }
}

/// The 1 → 2 → 4 → 8 growth path: every prefix of this list is a mix.
fn mix(sources: &[Vid]) -> Vec<Spec> {
    vec![
        Spec::Bfs(sources[0]),
        Spec::Cc,
        Spec::Sssp(sources[0]),
        Spec::Deg,
        Spec::Bfs(sources[1]),
        Spec::Sssp(sources[1]),
        Spec::Deg,
        Spec::Bfs(sources[2]),
    ]
}

fn attach_spec(
    reg: &QueryRegistry<u64>,
    engine: &Engine<QueryRegistry<u64>>,
    spec: Spec,
    name: &str,
) -> QueryId {
    match spec {
        Spec::Bfs(s) => reg.attach(engine, IncBfs, &[s], name),
        Spec::Cc => reg.attach(engine, IncCc, &[], name),
        Spec::Sssp(s) => reg.attach(engine, IncSssp, &[s], name),
        Spec::Deg => reg.attach(engine, DegreeCount, &[], name),
    }
    .expect("attach")
}

/// Ingest-to-fixpoint wall plus the harvested fixpoint of a solo engine.
fn run_solo<A: Algorithm<State = u64>>(
    algo: A,
    sources: &[Vid],
    shards: usize,
    edges: &[(Vid, Vid, Weight)],
) -> (Duration, Vec<(Vid, u64)>) {
    let engine = Engine::new(algo, EngineConfig::undirected(shards));
    for &s in sources {
        engine.try_init_vertex(s).unwrap();
    }
    let start = Instant::now();
    engine.try_ingest_weighted(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let wall = start.elapsed();
    (wall, engine.try_finish().unwrap().states.into_vec())
}

fn solo_spec(spec: Spec, shards: usize, edges: &[(Vid, Vid, Weight)]) -> (Duration, Vec<(Vid, u64)>) {
    match spec {
        Spec::Bfs(s) => run_solo(IncBfs, &[s], shards, edges),
        Spec::Cc => run_solo(IncCc, &[], shards, edges),
        Spec::Sssp(s) => run_solo(IncSssp, &[s], shards, edges),
        Spec::Deg => run_solo(DegreeCount, &[], shards, edges),
    }
}

/// One registry run with `specs` attached up front. Returns the
/// ingest-to-fixpoint wall and every query's projected fixpoint, asserted
/// against the solo references by the caller.
fn run_registry(
    specs: &[Spec],
    shards: usize,
    edges: &[(Vid, Vid, Weight)],
    solos: &HashMap<Spec, Vec<(Vid, u64)>>,
) -> Duration {
    let reg = QueryRegistry::<u64>::new();
    let engine = Engine::new(reg.clone(), EngineConfig::undirected(shards));
    let ids: Vec<QueryId> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| attach_spec(&reg, &engine, *s, &format!("{}-{i}", s.label())))
        .collect();
    let start = Instant::now();
    engine.try_ingest_weighted(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let wall = start.elapsed();
    let result = engine.try_finish().unwrap();
    for (spec, id) in specs.iter().zip(&ids) {
        assert_eq!(
            reg.project(&result.states, *id).into_vec(),
            solos[spec],
            "{} diverged from its solo fixpoint in a {}-query registry",
            spec.label(),
            specs.len()
        );
    }
    wall
}

/// The attach-vs-reingest cell: seven queries are already live and fully
/// ingested when the 8th (a BFS) attaches — the wall from attach to
/// fixpoint is the backfill cost. The operational alternative (what you
/// would do without live attach) is tearing the engine down and
/// re-ingesting the whole stream with all 8 queries attached, which is
/// exactly the `reg-8` cell's wall.
fn run_attach(
    specs: &[Spec],
    shards: usize,
    edges: &[(Vid, Vid, Weight)],
    solos: &HashMap<Spec, Vec<(Vid, u64)>>,
) -> Duration {
    let (late_spec, residents) = specs.split_last().unwrap();
    let reg = QueryRegistry::<u64>::new();
    let engine = Engine::new(reg.clone(), EngineConfig::undirected(shards));
    for (i, s) in residents.iter().enumerate() {
        attach_spec(&reg, &engine, *s, &format!("{}-{i}", s.label()));
    }
    engine.try_ingest_weighted(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let start = Instant::now();
    let late = attach_spec(&reg, &engine, *late_spec, "late");
    engine.try_await_quiescence().unwrap();
    let wall = start.elapsed();
    let result = engine.try_finish().unwrap();
    assert_eq!(
        reg.project(&result.states, late).into_vec(),
        solos[late_spec],
        "live-attached {} diverged from its solo fixpoint",
        late_spec.label()
    );
    wall
}

fn main() {
    // SCALE 1.0 = the full RMAT-14 Graph500 stream, deduplicated (the
    // degree query counts duplicate add *events* while an attach backfill
    // replays stored *edges* once — identity needs a duplicate-free
    // stream), with deterministic weights for the SSSP lanes.
    let cfg = RmatConfig::graph500(14);
    let mut raw = rmat::generate(&cfg);
    let keep = ((raw.len() as f64 * bench_scale()) as usize).clamp(1, raw.len());
    raw.truncate(keep);
    stream::shuffle(&mut raw, 23);
    let mut seen = std::collections::HashSet::new();
    let edges: Vec<(Vid, Vid, Weight)> = raw
        .iter()
        .filter(|&&(a, b)| a != b && seen.insert(if a < b { (a, b) } else { (b, a) }))
        .map(|&(a, b)| (a, b, (a % 13 + b % 7) + 1))
        .collect();
    let shards = shard_counts().last().copied().unwrap_or(8);
    let sources: Vec<Vid> = vec![edges[0].0, edges[1].0, edges[2].0];
    let full_mix = mix(&sources);
    println!(
        "marginal query: {} unique edge events at {shards} shard(s), mix {:?}",
        edges.len(),
        full_mix.iter().map(Spec::label).collect::<Vec<_>>()
    );

    // Solo reference fixpoints, one per distinct query spec (untimed —
    // the timed solo cells below re-run the gated ones).
    let mut solos: HashMap<Spec, Vec<(Vid, u64)>> = HashMap::new();
    for spec in &full_mix {
        if !solos.contains_key(spec) {
            solos.insert(*spec, solo_spec(*spec, shards, &edges).1);
        }
    }

    // Rep-major interleaved sweep, min wall per cell. Cell order:
    // 4 timed solos, the 1→2→4→8 registry ladder, the live-attach cell.
    let timed_solos = [
        Spec::Bfs(sources[0]),
        Spec::Cc,
        Spec::Sssp(sources[0]),
        Spec::Deg,
    ];
    let counts = [1usize, 2, 4, 8];
    let mut solo_wall: Vec<Option<Duration>> = vec![None; timed_solos.len()];
    let mut reg_wall: Vec<Option<Duration>> = vec![None; counts.len()];
    let mut attach_wall: Option<Duration> = None;
    for _ in 0..bench_reps() {
        for (slot, spec) in solo_wall.iter_mut().zip(&timed_solos) {
            let (wall, fix) = solo_spec(*spec, shards, &edges);
            assert_eq!(&fix, &solos[spec], "{} solo rerun diverged", spec.label());
            *slot = Some(slot.map_or(wall, |p: Duration| p.min(wall)));
        }
        for (slot, &n) in reg_wall.iter_mut().zip(&counts) {
            let wall = run_registry(&full_mix[..n], shards, &edges, &solos);
            *slot = Some(slot.map_or(wall, |p: Duration| p.min(wall)));
        }
        let wall = run_attach(&full_mix, shards, &edges, &solos);
        attach_wall = Some(attach_wall.map_or(wall, |p| p.min(wall)));
    }
    let solo_wall: Vec<Duration> = solo_wall.into_iter().map(|w| w.unwrap()).collect();
    let reg_wall: Vec<Duration> = reg_wall.into_iter().map(|w| w.unwrap()).collect();
    let attach_wall = attach_wall.unwrap();

    // Gates (guarded: wall deltas need full scale and enough cores,
    // REMO_BENCH_STRICT_QUERY=1 forces them).
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let strict = std::env::var("REMO_BENCH_STRICT_QUERY").as_deref() == Ok("1");
    let gates_on = bench_scale() >= 1.0 && (cores >= shards || strict);
    let marginal_2nd = reg_wall[1].saturating_sub(reg_wall[0]);
    let solo_2nd = solo_wall[1]; // the 2nd query in the mix is CC
    let marginal_pct = 100.0 * marginal_2nd.as_secs_f64() / solo_2nd.as_secs_f64().max(1e-9);
    // Re-ingest = rebuild with all 8 queries and replay the stream: reg-8.
    let reingest = reg_wall[counts.len() - 1];
    let attach_speedup = reingest.as_secs_f64() / attach_wall.as_secs_f64().max(1e-9);
    if gates_on {
        assert!(
            marginal_pct <= 40.0,
            "2nd query's marginal wall is {marginal_pct:.1}% of its solo run (ceiling 40%)"
        );
        assert!(
            attach_speedup >= 2.0,
            "live attach-backfill is only {attach_speedup:.2}x a full re-ingest (floor 2x)"
        );
    } else {
        eprintln!(
            "note: wall gates skipped (scale {} / {cores} core(s) for {shards} shards); \
             REMO_BENCH_STRICT_QUERY=1 forces them",
            bench_scale()
        );
    }

    let mut rows = Vec::new();
    for (spec, wall) in timed_solos.iter().zip(&solo_wall) {
        rows.push(vec![
            format!("solo-{}", spec.label()),
            "1".to_string(),
            fmt_dur(*wall),
            "base".to_string(),
            "ok".to_string(),
        ]);
    }
    for (&n, wall) in counts.iter().zip(&reg_wall) {
        let vs_one = 100.0 * (wall.as_secs_f64() - reg_wall[0].as_secs_f64())
            / reg_wall[0].as_secs_f64().max(1e-9);
        rows.push(vec![
            format!("reg-{n}"),
            n.to_string(),
            fmt_dur(*wall),
            format!("{vs_one:+.1}%"),
            "ok".to_string(),
        ]);
    }
    rows.push(vec![
        "marginal-2nd".to_string(),
        "2".to_string(),
        fmt_dur(marginal_2nd),
        format!("{marginal_pct:.1}% of solo"),
        if gates_on { "gated<=40%" } else { "ungated" }.to_string(),
    ]);
    rows.push(vec![
        "attach-backfill".to_string(),
        "1".to_string(),
        fmt_dur(attach_wall),
        format!("{attach_speedup:.2}x vs re-ingest"),
        if gates_on { "gated>=2x" } else { "ungated" }.to_string(),
    ]);
    report(
        "marginal_query",
        "Marginal query cost: 1-8 live queries on one topology (registry)",
        &["cell", "queries", "wall", "delta", "identity"],
        &rows,
    );
}
