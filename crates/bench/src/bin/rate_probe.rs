//! Quick saturation-rate probe: construction-only event rate across shard
//! counts on a Twitter-like stream. Useful for sizing `REMO_BENCH_SCALE` /
//! `REMO_BENCH_SHARDS` on a new machine before running the full figure
//! harnesses.
//!
//! Usage: `SC=1.0 cargo run --release -p remo-bench --bin rate_probe`
//! (`SC` scales the dataset; default 0.5).

use remo_bench::*;
use remo_gen::{stream, Dataset};
fn main() {
    let mut edges = Dataset::TwitterLike.generate(
        std::env::var("SC")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.5),
        303,
    );
    stream::shuffle(&mut edges, 42);
    println!("{} events", edges.len());
    for p in [1usize, 2, 4, 8] {
        let run = timed_run(ConstructionOnly, p, &edges, &[]);
        println!(
            "P={p}: {:?} -> {}/s",
            run.elapsed,
            fmt_rate(run.events_per_sec())
        );
    }
}
