//! # remo-bench — harness utilities for regenerating the paper's evaluation
//!
//! Every table and figure of the paper's §V has a bench target in
//! `benches/` that prints the corresponding rows/series. This library holds
//! the shared machinery: saturation-test runners (the paper's methodology —
//! streams pre-randomized and pulled "as fast as possible", §V-A), a
//! construction-only algorithm, a static-BFS-over-dynamic-store driver
//! (Fig. 3's centre bar), and table formatting.
//!
//! Workload sizes default to laptop scale; set `REMO_BENCH_SCALE` (a float
//! multiplier) and `REMO_BENCH_SHARDS` (comma-separated shard counts) to
//! dial them.

use std::time::{Duration, Instant};

use remo_core::{
    AlgoCtx, Algorithm, Engine, EngineConfig, RunResult, VertexId, VertexState, Weight,
};
use remo_store::VertexTable;

/// "CON" in Fig. 5: graph construction with no algorithm hooked in.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstructionOnly;

impl Algorithm for ConstructionOnly {
    type State = u64;
}

/// A timed saturation run: ingest the whole stream and wait for quiescence.
pub struct TimedRun<S> {
    pub result: RunResult<S>,
    pub elapsed: Duration,
}

impl<S> TimedRun<S> {
    /// Topology events per second — the paper's headline metric.
    pub fn events_per_sec(&self) -> f64 {
        let t = self.result.metrics.total();
        t.topo_ingested as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs `algo` over the unweighted stream at `shards`, initiating `inits`
/// first, timing ingestion-to-quiescence.
pub fn timed_run<A: Algorithm>(
    algo: A,
    shards: usize,
    edges: &[(VertexId, VertexId)],
    inits: &[VertexId],
) -> TimedRun<A::State> {
    let engine = Engine::new(algo, EngineConfig::undirected(shards));
    for &v in inits {
        engine.try_init_vertex(v).unwrap();
    }
    let start = Instant::now();
    engine.try_ingest_pairs(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let elapsed = start.elapsed();
    TimedRun {
        result: engine.try_finish().unwrap(),
        elapsed,
    }
}

/// Weighted variant of [`timed_run`].
pub fn timed_run_weighted<A: Algorithm>(
    algo: A,
    shards: usize,
    edges: &[(VertexId, VertexId, Weight)],
    inits: &[VertexId],
) -> TimedRun<A::State> {
    let engine = Engine::new(algo, EngineConfig::undirected(shards));
    for &v in inits {
        engine.try_init_vertex(v).unwrap();
    }
    let start = Instant::now();
    engine.try_ingest_weighted(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let elapsed = start.elapsed();
    TimedRun {
        result: engine.try_finish().unwrap(),
        elapsed,
    }
}

/// Static top-down BFS **over the dynamic store** (the paper's Fig. 3
/// centre bar: "running the static algorithm run-time on top of ... the
/// graph constructed dynamically"). Every state read/write goes through the
/// sharded Robin Hood tables instead of a flat CSR array — exactly the
/// locality disadvantage §V-B discusses.
pub fn static_bfs_on_dynamic<S: Clone + Default + Send + PartialEq + std::fmt::Debug + 'static>(
    tables: &[VertexTable<VertexState<S>>],
    source: VertexId,
) -> Vec<(VertexId, u64)> {
    use remo_core::Partitioner;
    use remo_store::RhhMap;
    let part = Partitioner::new(tables.len());
    let mut levels: RhhMap<VertexId, u64> = RhhMap::new();
    let mut frontier = vec![source];
    levels.insert(source, 1);
    let mut level = 1u64;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            let table = &tables[part.owner(v)];
            if let Some(rec) = table.get(v) {
                for (nbr, _) in rec.adj.iter() {
                    if !levels.contains(nbr) {
                        levels.insert(nbr, level);
                        next.push(nbr);
                    }
                }
            }
        }
        frontier = next;
    }
    levels.iter().map(|(v, &l)| (v, l)).collect()
}

/// Size multiplier from `REMO_BENCH_SCALE` (default 1.0).
pub fn bench_scale() -> f64 {
    std::env::var("REMO_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Shard counts from `REMO_BENCH_SHARDS` (default "1,2,4,8", capped at the
/// machine's available parallelism).
pub fn shard_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8);
    std::env::var("REMO_BENCH_SHARDS")
        .ok()
        .map(|v| v.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
        .into_iter()
        .filter(|&s| s >= 1 && s <= max.max(8))
        .collect()
}

/// Formats a rate in the paper's "events per second" style.
pub fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}B", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}K", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

/// Prints a markdown-style table (header + rows) to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(4)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// A tiny always-empty-callback marker used by criterion benches.
#[derive(Debug, Default, Clone, Copy)]
pub struct Noop;

impl Algorithm for Noop {
    type State = u64;
    fn on_add(&self, _ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_run_counts_events() {
        let edges = vec![(0u64, 1u64), (1, 2), (2, 3)];
        let run = timed_run(ConstructionOnly, 2, &edges, &[]);
        assert_eq!(run.result.metrics.total().topo_ingested, 3);
        assert!(run.events_per_sec() > 0.0);
    }

    #[test]
    fn static_bfs_on_dynamic_matches_levels() {
        let edges = vec![(0u64, 1u64), (1, 2), (0, 3)];
        let run = timed_run(ConstructionOnly, 3, &edges, &[]);
        let mut levels = static_bfs_on_dynamic(&run.result.tables, 0);
        levels.sort_unstable();
        assert_eq!(levels, vec![(0, 1), (1, 2), (2, 3), (3, 2)]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_rate(1_500_000.0), "1.50M");
        assert_eq!(fmt_rate(2_000.0), "2.0K");
        assert_eq!(fmt_rate(3.2e9), "3.20B");
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
    }

    #[test]
    fn scale_default_is_one() {
        std::env::remove_var("REMO_BENCH_SCALE");
        assert_eq!(bench_scale(), 1.0);
    }
}
