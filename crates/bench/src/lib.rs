//! # remo-bench — harness utilities for regenerating the paper's evaluation
//!
//! Every table and figure of the paper's §V has a bench target in
//! `benches/` that prints the corresponding rows/series. This library holds
//! the shared machinery: saturation-test runners (the paper's methodology —
//! streams pre-randomized and pulled "as fast as possible", §V-A), a
//! construction-only algorithm, a static-BFS-over-dynamic-store driver
//! (Fig. 3's centre bar), and table formatting.
//!
//! Workload sizes default to laptop scale; set `REMO_BENCH_SCALE` (a float
//! multiplier) and `REMO_BENCH_SHARDS` (comma-separated shard counts) to
//! dial them.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use remo_core::{
    AlgoCtx, Algorithm, Engine, EngineConfig, LatencyHistogram, RunResult, VertexId, VertexState,
    Weight,
};
use remo_store::VertexTable;

/// Process-wide accumulator of sampled event-service-time measurements
/// across every timed run of a bench invocation. `json_table` surfaces its
/// p50/p99/p999 in each `BENCH_*.json`, so every committed artifact
/// carries the latency shape behind its throughput numbers.
static SERVICE_HIST: Mutex<LatencyHistogram> = Mutex::new(LatencyHistogram::new());

/// Folds one run's harvested service-time histogram into the accumulator.
/// Called by every `timed_run*` helper; benches driving engines by hand
/// can call it themselves.
pub fn note_service(h: &LatencyHistogram) {
    SERVICE_HIST
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .merge(h);
}

/// Process-wide ingest + adaptive-controller totals across every timed run
/// of a bench invocation. `json_table` derives the sustained
/// `updates_per_sec` (topology updates / timed wall-clock) and surfaces the
/// adaptive decision counters, so a committed artifact shows both how fast
/// the stream went in and what the controller did while it ran.
#[derive(Debug, Default, Clone, Copy)]
struct IngestTotals {
    updates: u64,
    wall_secs: f64,
    adaptive_decisions: u64,
    adaptive_coalesce_on: u64,
    adaptive_coalesce_off: u64,
    adaptive_batch_grow: u64,
    adaptive_batch_shrink: u64,
}

static INGEST_TOTALS: Mutex<IngestTotals> = Mutex::new(IngestTotals {
    updates: 0,
    wall_secs: 0.0,
    adaptive_decisions: 0,
    adaptive_coalesce_on: 0,
    adaptive_coalesce_off: 0,
    adaptive_batch_grow: 0,
    adaptive_batch_shrink: 0,
});

/// Folds one run's ingest volume and adaptive counters into the
/// process-wide accumulator. Called by every `timed_run*` helper; benches
/// driving engines by hand can call it themselves.
pub fn note_ingest(elapsed: Duration, totals: &remo_core::ShardMetrics) {
    let mut t = INGEST_TOTALS.lock().unwrap_or_else(|p| p.into_inner());
    t.updates += totals.topo_ingested;
    t.wall_secs += elapsed.as_secs_f64();
    t.adaptive_decisions += totals.adaptive_decisions;
    t.adaptive_coalesce_on += totals.adaptive_coalesce_on;
    t.adaptive_coalesce_off += totals.adaptive_coalesce_off;
    t.adaptive_batch_grow += totals.adaptive_batch_grow;
    t.adaptive_batch_shrink += totals.adaptive_batch_shrink;
}

/// The accumulated service-time histogram so far.
pub fn service_hist() -> LatencyHistogram {
    SERVICE_HIST
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

/// "CON" in Fig. 5: graph construction with no algorithm hooked in.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstructionOnly;

impl Algorithm for ConstructionOnly {
    type State = u64;
}

/// A timed saturation run: ingest the whole stream and wait for quiescence.
pub struct TimedRun<S> {
    pub result: RunResult<S>,
    pub elapsed: Duration,
}

impl<S> TimedRun<S> {
    /// Topology events per second — the paper's headline metric.
    pub fn events_per_sec(&self) -> f64 {
        let t = self.result.metrics.total();
        t.topo_ingested as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs `algo` over the unweighted stream at `shards`, initiating `inits`
/// first, timing ingestion-to-quiescence.
pub fn timed_run<A: Algorithm>(
    algo: A,
    shards: usize,
    edges: &[(VertexId, VertexId)],
    inits: &[VertexId],
) -> TimedRun<A::State> {
    let engine = Engine::new(algo, EngineConfig::undirected(shards));
    for &v in inits {
        engine.try_init_vertex(v).unwrap();
    }
    let start = Instant::now();
    engine.try_ingest_pairs(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let elapsed = start.elapsed();
    let result = engine.try_finish().unwrap();
    note_service(&result.metrics.service);
    note_ingest(elapsed, &result.metrics.total());
    TimedRun { result, elapsed }
}

/// [`timed_run`] with a caller-supplied engine config, for ablations that
/// flip `EngineConfig` switches rather than shard counts.
pub fn timed_run_with<A: Algorithm>(
    algo: A,
    config: EngineConfig,
    edges: &[(VertexId, VertexId)],
    inits: &[VertexId],
) -> TimedRun<A::State> {
    let engine = Engine::new(algo, config);
    for &v in inits {
        engine.try_init_vertex(v).unwrap();
    }
    let start = Instant::now();
    engine.try_ingest_pairs(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let elapsed = start.elapsed();
    let result = engine.try_finish().unwrap();
    note_service(&result.metrics.service);
    note_ingest(elapsed, &result.metrics.total());
    TimedRun { result, elapsed }
}

/// Weighted variant of [`timed_run_with`].
pub fn timed_run_weighted_with<A: Algorithm>(
    algo: A,
    config: EngineConfig,
    edges: &[(VertexId, VertexId, Weight)],
    inits: &[VertexId],
) -> TimedRun<A::State> {
    let engine = Engine::new(algo, config);
    for &v in inits {
        engine.try_init_vertex(v).unwrap();
    }
    let start = Instant::now();
    engine.try_ingest_weighted(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let elapsed = start.elapsed();
    let result = engine.try_finish().unwrap();
    note_service(&result.metrics.service);
    note_ingest(elapsed, &result.metrics.total());
    TimedRun { result, elapsed }
}

/// Weighted variant of [`timed_run`].
pub fn timed_run_weighted<A: Algorithm>(
    algo: A,
    shards: usize,
    edges: &[(VertexId, VertexId, Weight)],
    inits: &[VertexId],
) -> TimedRun<A::State> {
    let engine = Engine::new(algo, EngineConfig::undirected(shards));
    for &v in inits {
        engine.try_init_vertex(v).unwrap();
    }
    let start = Instant::now();
    engine.try_ingest_weighted(edges).unwrap();
    engine.try_await_quiescence().unwrap();
    let elapsed = start.elapsed();
    let result = engine.try_finish().unwrap();
    note_service(&result.metrics.service);
    note_ingest(elapsed, &result.metrics.total());
    TimedRun { result, elapsed }
}

/// Static top-down BFS **over the dynamic store** (the paper's Fig. 3
/// centre bar: "running the static algorithm run-time on top of ... the
/// graph constructed dynamically"). Every state read/write goes through the
/// sharded Robin Hood tables instead of a flat CSR array — exactly the
/// locality disadvantage §V-B discusses.
pub fn static_bfs_on_dynamic<S: Clone + Default + Send + PartialEq + std::fmt::Debug + 'static>(
    tables: &[VertexTable<VertexState<S>>],
    source: VertexId,
) -> Vec<(VertexId, u64)> {
    use remo_core::Partitioner;
    use remo_store::RhhMap;
    let part = Partitioner::new(tables.len());
    let mut levels: RhhMap<VertexId, u64> = RhhMap::new();
    let mut frontier = vec![source];
    levels.insert(source, 1);
    let mut level = 1u64;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            let table = &tables[part.owner(v)];
            if let Some(rec) = table.get(v) {
                for (nbr, _) in rec.adj.iter() {
                    if !levels.contains(nbr) {
                        levels.insert(nbr, level);
                        next.push(nbr);
                    }
                }
            }
        }
        frontier = next;
    }
    levels.iter().map(|(v, &l)| (v, l)).collect()
}

/// Size multiplier from `REMO_BENCH_SCALE` (default 1.0).
pub fn bench_scale() -> f64 {
    std::env::var("REMO_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Repetitions per measured cell from `REMO_BENCH_REPS` (default 5). Benches
/// that compare wall-clock across configurations keep the minimum across
/// reps, which discards scheduler noise on loaded/single-core boxes.
pub fn bench_reps() -> usize {
    std::env::var("REMO_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5)
}

/// Shard counts from `REMO_BENCH_SHARDS` (default "1,2,4,8", capped at the
/// machine's available parallelism).
pub fn shard_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(8);
    std::env::var("REMO_BENCH_SHARDS")
        .ok()
        .map(|v| v.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
        .into_iter()
        .filter(|&s| s >= 1 && s <= max.max(8))
        .collect()
}

/// Formats a rate in the paper's "events per second" style.
pub fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}B", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}K", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

/// Formats a byte count in adaptive binary units.
pub fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.1}MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1}KiB", b / KIB)
    } else {
        format!("{b:.0}B")
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` off Linux or if the field is missing —
/// callers report it as best-effort telemetry, never a hard number.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

/// Renders a markdown-style table (header + rows) to a string.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |out: &mut String, cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(4)))
            .collect();
        let _ = writeln!(out, "| {} |", padded.join(" | "));
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let _ = writeln!(
        out,
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Prints a markdown-style table (header + rows) to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, header, rows));
}

/// Where bench artifacts land: `REMO_BENCH_OUT`, default `bench_results/`.
pub fn bench_out_dir() -> std::path::PathBuf {
    std::env::var("REMO_BENCH_OUT")
        .unwrap_or_else(|_| "bench_results".to_string())
        .into()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes a table as `{"name", "scale", "header", "rows": [{col: cell}]}`.
/// Hand-rolled (the workspace has no serde); cells stay the exact strings
/// the printed table shows, so the two artifacts can never disagree.
pub fn json_table(name: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", json_escape(name)));
    out.push_str(&format!("  \"scale\": {},\n", bench_scale()));
    // Host topology at serialization time: every committed artifact says
    // what machine shape produced it, so cross-host comparisons (1-core CI
    // vs a multi-socket box) are never apples-to-oranges by accident.
    let topo = remo_core::placement::host();
    out.push_str(&format!(
        "  \"host_topology\": {{\"cpus\": {}, \"numa_nodes\": {}, \"from_sysfs\": {}}},\n",
        topo.num_cpus(),
        topo.nodes,
        topo.from_sysfs
    ));
    // Process-wide high-water mark at serialization time: comparable across
    // cells of one bench run, not across separately-invoked benches.
    out.push_str(&format!(
        "  \"peak_rss_bytes\": {},\n",
        peak_rss_bytes().unwrap_or(0)
    ));
    // Sampled event-service-time quantiles accumulated over every timed
    // run of this bench process (zeros if nothing sampled — e.g. a
    // telemetry-off ablation cell ran alone).
    let service = service_hist();
    let (p50, p99, p999) = service.quantiles_us();
    out.push_str(&format!(
        "  \"service_time_us\": {{\"samples\": {}, \"p50\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}}},\n",
        service.count, p50, p99, p999
    ));
    // Sustained topology-update rate over every timed run of this bench
    // process, plus what the adaptive controller decided along the way
    // (all zeros when no timed runs happened or adaptation was off).
    let t = *INGEST_TOTALS.lock().unwrap_or_else(|p| p.into_inner());
    let ups = if t.wall_secs > 1e-9 {
        t.updates as f64 / t.wall_secs
    } else {
        0.0
    };
    out.push_str(&format!("  \"updates_per_sec\": {ups:.3},\n"));
    out.push_str(&format!(
        "  \"adaptive\": {{\"decisions\": {}, \"coalesce_on\": {}, \"coalesce_off\": {}, \"batch_grow\": {}, \"batch_shrink\": {}}},\n",
        t.adaptive_decisions,
        t.adaptive_coalesce_on,
        t.adaptive_coalesce_off,
        t.adaptive_batch_grow,
        t.adaptive_batch_shrink
    ));
    out.push_str("  \"rows\": [\n");
    for (r, row) in rows.iter().enumerate() {
        out.push_str("    {");
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let key = header.get(i).copied().unwrap_or("col");
            out.push_str(&format!(
                "\"{}\": \"{}\"",
                json_escape(key),
                json_escape(cell)
            ));
        }
        out.push('}');
        if r + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the table AND persists both artifacts: the rendered table as
/// `<dir>/<name>.txt` and machine-readable `<dir>/BENCH_<name>.json`.
/// Filesystem problems are reported, never fatal — a bench run's numbers
/// still land on stdout.
pub fn report(name: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
    let rendered = render_table(title, header, rows);
    print!("{rendered}");
    let dir = bench_out_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("bench report: cannot create {}: {e}", dir.display());
        return;
    }
    let txt = dir.join(format!("{name}.txt"));
    if let Err(e) = std::fs::write(&txt, &rendered) {
        eprintln!("bench report: cannot write {}: {e}", txt.display());
    }
    let json = dir.join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&json, json_table(name, header, rows)) {
        eprintln!("bench report: cannot write {}: {e}", json.display());
    }
}

/// A tiny always-empty-callback marker used by criterion benches.
#[derive(Debug, Default, Clone, Copy)]
pub struct Noop;

impl Algorithm for Noop {
    type State = u64;
    fn on_add(&self, _ctx: &mut impl AlgoCtx<u64>, _v: VertexId, _val: &u64, _w: Weight) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_run_counts_events() {
        let edges = vec![(0u64, 1u64), (1, 2), (2, 3)];
        let run = timed_run(ConstructionOnly, 2, &edges, &[]);
        assert_eq!(run.result.metrics.total().topo_ingested, 3);
        assert!(run.events_per_sec() > 0.0);
    }

    #[test]
    fn static_bfs_on_dynamic_matches_levels() {
        let edges = vec![(0u64, 1u64), (1, 2), (0, 3)];
        let run = timed_run(ConstructionOnly, 3, &edges, &[]);
        let mut levels = static_bfs_on_dynamic(&run.result.tables, 0);
        levels.sort_unstable();
        assert_eq!(levels, vec![(0, 1), (1, 2), (2, 3), (3, 2)]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_rate(1_500_000.0), "1.50M");
        assert_eq!(fmt_rate(2_000.0), "2.0K");
        assert_eq!(fmt_rate(3.2e9), "3.20B");
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4 * 1024), "4.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 / 2), "1.5MiB");
    }

    #[test]
    fn peak_rss_reports_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn json_table_carries_peak_rss() {
        let j = json_table("t", &["a"], &[vec!["1".to_string()]]);
        assert!(j.contains("\"peak_rss_bytes\": "));
    }

    #[test]
    fn json_table_carries_updates_rate_and_adaptive_counters() {
        let totals = remo_core::ShardMetrics {
            topo_ingested: 100,
            adaptive_decisions: 4,
            adaptive_coalesce_on: 1,
            ..Default::default()
        };
        note_ingest(Duration::from_millis(50), &totals);
        let j = json_table("t", &["a"], &[vec!["1".to_string()]]);
        assert!(j.contains("\"updates_per_sec\": "));
        assert!(j.contains("\"adaptive\": {\"decisions\": "));
        assert!(j.contains("\"coalesce_on\": "));
        assert!(j.contains("\"batch_shrink\": "));
    }

    #[test]
    fn json_table_carries_host_topology() {
        let j = json_table("t", &["a"], &[vec!["1".to_string()]]);
        assert!(j.contains("\"host_topology\": {\"cpus\": "));
        assert!(j.contains("\"numa_nodes\": "));
        assert!(j.contains("\"from_sysfs\": "));
    }

    #[test]
    fn json_table_carries_service_quantiles() {
        note_service(&{
            let mut h = LatencyHistogram::new();
            h.record(1_000);
            h.record(2_000);
            h
        });
        let j = json_table("t", &["a"], &[vec!["1".to_string()]]);
        assert!(j.contains("\"service_time_us\": {\"samples\": "));
        assert!(j.contains("\"p50\": "));
        assert!(j.contains("\"p999\": "));
    }

    #[test]
    fn scale_default_is_one() {
        std::env::remove_var("REMO_BENCH_SCALE");
        assert_eq!(bench_scale(), 1.0);
    }

    #[test]
    fn json_table_is_wellformed_and_escaped() {
        let rows = vec![
            vec!["a\"b".to_string(), "1.50M".to_string()],
            vec!["plain".to_string(), "2".to_string()],
        ];
        let j = json_table("t1", &["name", "rate"], &rows);
        assert!(j.contains("\"name\": \"t1\""));
        assert!(j.contains("\"name\": \"a\\\"b\", \"rate\": \"1.50M\""));
        assert!(j.contains("\"rows\": ["));
        // Balanced braces/brackets — a cheap well-formedness proxy given no
        // JSON parser in the workspace.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.matches(open).count(),
                j.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn render_table_aligns_columns() {
        let rows = vec![vec!["x".to_string(), "123456".to_string()]];
        let t = render_table("T", &["col", "value"], &rows);
        assert!(t.contains("## T"));
        assert!(t.contains("| x   | 123456 |"));
    }
}
