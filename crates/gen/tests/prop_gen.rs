//! Property tests for the workload generators and stream tools: the
//! determinism and structural invariants every experiment relies on.

use proptest::prelude::*;
use remo_gen::{random, rmat, social, stream, web};

proptest! {
    /// Shuffle is a permutation, deterministic per seed.
    #[test]
    fn shuffle_is_deterministic_permutation(
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let original: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i + 1)).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        stream::shuffle(&mut a, seed);
        stream::shuffle(&mut b, seed);
        prop_assert_eq!(&a, &b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, original);
    }

    /// Split partitions the stream, preserves per-stream order, and
    /// round-robin reassembly is the identity.
    #[test]
    fn split_partitions_and_preserves_order(
        n in 0usize..300,
        k in 1usize..9,
    ) {
        let edges: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i * 2)).collect();
        let streams = stream::split(&edges, k);
        prop_assert_eq!(streams.len(), k);
        prop_assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), n);
        // Round-robin reassembly reproduces the original order.
        let mut rebuilt = Vec::with_capacity(n);
        let mut cursors = vec![0usize; k];
        for i in 0..n {
            let s = i % k;
            rebuilt.push(streams[s][cursors[s]]);
            cursors[s] += 1;
        }
        prop_assert_eq!(rebuilt, edges);
    }

    /// Weight decoration is deterministic and in range.
    #[test]
    fn weights_bounded_and_deterministic(
        n in 1usize..200,
        wmax in 1u64..1000,
        seed in any::<u64>(),
    ) {
        let edges: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i + 7)).collect();
        let a = stream::with_weights(&edges, wmax, seed);
        let b = stream::with_weights(&edges, wmax, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&(_, _, w)| (1..=wmax).contains(&w)));
        prop_assert!(a.iter().zip(edges.iter()).all(|(&(s, d, _), &(es, ed))| s == es && d == ed));
    }

    /// RMAT output is always in-domain and exactly sized, at any scale.
    #[test]
    fn rmat_in_domain(scale in 1u32..12, seed in any::<u64>()) {
        let cfg = rmat::RmatConfig { seed, ..rmat::RmatConfig::graph500(scale) };
        let edges = rmat::generate(&cfg);
        prop_assert_eq!(edges.len() as u64, cfg.num_edges());
        let n = cfg.num_vertices();
        prop_assert!(edges.iter().all(|&(s, d)| s < n && d < n));
    }

    /// Social generator: ids in range, no self loops, deterministic.
    #[test]
    fn social_invariants(n in 4u64..400, m in 1u32..6, seed in any::<u64>()) {
        let cfg = social::SocialConfig { num_vertices: n, edges_per_vertex: m, seed };
        let a = social::generate(&cfg);
        prop_assert_eq!(&a, &social::generate(&cfg));
        prop_assert!(a.iter().all(|&(s, d)| s < n && d < n && s != d));
    }

    /// Web generator: ids in range, no self loops, deterministic.
    #[test]
    fn web_invariants(n in 2u64..300, seed in any::<u64>()) {
        let cfg = web::WebConfig::sk_like(n, seed);
        let a = web::generate(&cfg);
        prop_assert_eq!(&a, &web::generate(&cfg));
        prop_assert!(a.iter().all(|&(s, d)| s < n && d < n && s != d));
    }

    /// ER generator hits its exact edge count with valid endpoints.
    #[test]
    fn er_invariants(n in 2u64..300, m in 0u64..500, seed in any::<u64>()) {
        let cfg = random::ErConfig { num_vertices: n, num_edges: m, seed };
        let a = random::erdos_renyi(&cfg);
        prop_assert_eq!(a.len() as u64, m);
        prop_assert!(a.iter().all(|&(s, d)| s < n && d < n && s != d));
    }

    /// Watts-Strogatz: exact edge count n*k, no self loops.
    #[test]
    fn ws_invariants(n in 3u64..200, k in 1u32..4, beta in 0.0f64..1.0, seed in any::<u64>()) {
        let cfg = random::WsConfig { num_vertices: n, k, beta, seed };
        let a = random::watts_strogatz(&cfg);
        prop_assert_eq!(a.len() as u64, n * k as u64);
        prop_assert!(a.iter().all(|&(s, d)| s < n && d < n && s != d));
    }

    /// Prefix returns exactly the requested fraction.
    #[test]
    fn prefix_fraction(n in 0usize..200, frac in 0.0f64..1.0) {
        let edges: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i)).collect();
        let p = stream::prefix(&edges, frac);
        prop_assert_eq!(p.len(), ((n as f64) * frac).round() as usize);
        prop_assert_eq!(p, &edges[..p.len()]);
    }
}
