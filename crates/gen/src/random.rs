//! Uniform (Erdős–Rényi) and small-world (Watts–Strogatz) generators.
//!
//! These two complement the scale-free generators: ER gives a structureless
//! control (near-uniform degrees, logarithmic diameter), WS gives high
//! clustering and tunable locality. The paper observes (Fig. 5/6) that the
//! event processing rate "is more closely tied with the structure of the
//! graph topology ... rather than the growth of the graph" — structure
//! diversity in the workloads is what lets our reproduction exhibit the same
//! per-dataset spread.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::VertexId;

/// G(n, m): `num_edges` uniform random pairs (self-loops excluded,
/// parallel edges possible, matching a raw event stream where duplicates
/// occur and the store dedupes).
#[derive(Debug, Clone, Copy)]
pub struct ErConfig {
    pub num_vertices: u64,
    pub num_edges: u64,
    pub seed: u64,
}

/// Generates a uniform random edge list.
pub fn erdos_renyi(cfg: &ErConfig) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut edges = Vec::with_capacity(cfg.num_edges as usize);
    while (edges.len() as u64) < cfg.num_edges {
        let s = rng.gen_range(0..cfg.num_vertices);
        let d = rng.gen_range(0..cfg.num_vertices);
        if s != d {
            edges.push((s, d));
        }
    }
    edges
}

/// Watts–Strogatz: ring lattice of degree `2k` with rewiring probability `beta`.
#[derive(Debug, Clone, Copy)]
pub struct WsConfig {
    pub num_vertices: u64,
    /// Each vertex connects to its `k` clockwise neighbours.
    pub k: u32,
    /// Probability of rewiring each lattice edge to a uniform target.
    pub beta: f64,
    pub seed: u64,
}

/// Generates a small-world edge list. Degenerate configurations where the
/// ring wraps onto itself (`k >= n`) rewire those slots uniformly instead
/// of emitting self-loops.
pub fn watts_strogatz(cfg: &WsConfig) -> Vec<(VertexId, VertexId)> {
    assert!(cfg.num_vertices >= 2, "need at least two vertices");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.num_vertices;
    let mut edges = Vec::with_capacity((n * cfg.k as u64) as usize);
    for v in 0..n {
        for j in 1..=cfg.k as u64 {
            let lattice_target = (v + j) % n;
            let target = if lattice_target == v || rng.gen::<f64>() < cfg.beta {
                // Rewire to a uniform non-self target.
                loop {
                    let t = rng.gen_range(0..n);
                    if t != v {
                        break t;
                    }
                }
            } else {
                lattice_target
            };
            edges.push((v, target));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_count_and_range() {
        let cfg = ErConfig {
            num_vertices: 100,
            num_edges: 1000,
            seed: 1,
        };
        let edges = erdos_renyi(&cfg);
        assert_eq!(edges.len(), 1000);
        assert!(edges.iter().all(|&(s, d)| s < 100 && d < 100 && s != d));
    }

    #[test]
    fn er_deterministic() {
        let cfg = ErConfig {
            num_vertices: 50,
            num_edges: 500,
            seed: 9,
        };
        assert_eq!(erdos_renyi(&cfg), erdos_renyi(&cfg));
    }

    #[test]
    fn er_degrees_are_balanced() {
        let cfg = ErConfig {
            num_vertices: 100,
            num_edges: 10_000,
            seed: 2,
        };
        let mut deg = vec![0u64; 100];
        for (s, d) in erdos_renyi(&cfg) {
            deg[s as usize] += 1;
            deg[d as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let min = *deg.iter().min().unwrap();
        // Uniform: expect ~200 per vertex; no heavy hitters.
        assert!(max < min * 2, "uniform graph looks skewed: {min}..{max}");
    }

    #[test]
    fn ws_zero_beta_is_pure_lattice() {
        let cfg = WsConfig {
            num_vertices: 10,
            k: 2,
            beta: 0.0,
            seed: 1,
        };
        let edges = watts_strogatz(&cfg);
        assert_eq!(edges.len(), 20);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(0, 2)));
        assert!(edges.contains(&(9, 0))); // wraps around
        assert!(edges.contains(&(9, 1)));
    }

    #[test]
    fn ws_full_beta_rewires_most_edges() {
        let cfg = WsConfig {
            num_vertices: 1000,
            k: 4,
            beta: 1.0,
            seed: 3,
        };
        let edges = watts_strogatz(&cfg);
        let lattice_like = edges
            .iter()
            .filter(|&&(s, d)| (d + 1000 - s) % 1000 <= 4)
            .count();
        // Under full rewiring only ~k/n of edges land back on the lattice.
        assert!(
            lattice_like < edges.len() / 20,
            "{lattice_like}/{} still lattice",
            edges.len()
        );
    }

    #[test]
    fn ws_no_self_loops() {
        let cfg = WsConfig {
            num_vertices: 100,
            k: 3,
            beta: 0.5,
            seed: 4,
        };
        assert!(watts_strogatz(&cfg).iter().all(|&(s, d)| s != d));
    }
}
