//! Edge-stream utilities.
//!
//! The paper's ingestion model (§III-C, §V-A): topology events arrive over
//! one or more streams; "each individual stream presents its own events
//! in-order, and events on different streams are treated as concurrent".
//! For evaluation, "edges are pre-randomized and ingested ... parallelized
//! into one stream per MPI rank". These helpers implement that methodology:
//! deterministic shuffling, stream splitting, and weight decoration.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::VertexId;

/// A directed, optionally weighted topology event stream (in event order).
pub type Edges = Vec<(VertexId, VertexId)>;

/// Fisher–Yates shuffles `edges` in place with a seeded RNG
/// ("edges are pre-randomized", §V-A).
pub fn shuffle(edges: &mut [(VertexId, VertexId)], seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }
}

/// Splits a stream into `k` in-order sub-streams, round-robin. Events within
/// each sub-stream preserve their relative order (the per-stream ordering
/// guarantee); events across sub-streams become concurrent.
pub fn split(edges: &[(VertexId, VertexId)], k: usize) -> Vec<Edges> {
    assert!(k > 0, "need at least one stream");
    let mut streams: Vec<Edges> = (0..k)
        .map(|i| Vec::with_capacity(edges.len() / k + usize::from(i < edges.len() % k)))
        .collect();
    for (i, &e) in edges.iter().enumerate() {
        streams[i % k].push(e);
    }
    streams
}

/// Decorates a stream with uniform random weights in `1..=max_weight`
/// (for SSSP workloads; the real datasets in Table I are unweighted, so the
/// paper, like us, synthesizes weights).
pub fn with_weights(
    edges: &[(VertexId, VertexId)],
    max_weight: u64,
    seed: u64,
) -> Vec<(VertexId, VertexId, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    edges
        .iter()
        .map(|&(s, d)| (s, d, rng.gen_range(1..=max_weight)))
        .collect()
}

/// Takes the first `frac` (0..=1) of the stream — used by interval
/// experiments (Fig. 4) to materialize the graph "as of" an ingestion point.
pub fn prefix(edges: &[(VertexId, VertexId)], frac: f64) -> &[(VertexId, VertexId)] {
    let n = ((edges.len() as f64) * frac.clamp(0.0, 1.0)).round() as usize;
    &edges[..n.min(edges.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Edges {
        (0..100u64).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a = sample();
        let mut b = sample();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b);
        assert_ne!(a, sample(), "seed 42 left the stream untouched");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, sample());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = sample();
        let mut b = sample();
        shuffle(&mut a, 1);
        shuffle(&mut b, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn split_preserves_order_and_partitions() {
        let edges = sample();
        let streams = split(&edges, 3);
        assert_eq!(streams.len(), 3);
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 100);
        // Round-robin: stream i holds elements i, i+3, i+6, ... in order.
        for (i, s) in streams.iter().enumerate() {
            let expected: Edges = edges.iter().skip(i).step_by(3).copied().collect();
            assert_eq!(s, &expected);
        }
    }

    #[test]
    fn split_one_is_identity() {
        let edges = sample();
        assert_eq!(split(&edges, 1), vec![edges]);
    }

    #[test]
    fn weights_in_range_and_deterministic() {
        let edges = sample();
        let w1 = with_weights(&edges, 10, 5);
        let w2 = with_weights(&edges, 10, 5);
        assert_eq!(w1, w2);
        assert!(w1.iter().all(|&(_, _, w)| (1..=10).contains(&w)));
        assert!(
            w1.iter()
                .map(|&(_, _, w)| w)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn prefix_fractions() {
        let edges = sample();
        assert_eq!(prefix(&edges, 0.0).len(), 0);
        assert_eq!(prefix(&edges, 0.25).len(), 25);
        assert_eq!(prefix(&edges, 1.0).len(), 100);
        assert_eq!(prefix(&edges, 2.0).len(), 100);
    }
}
