//! RMAT (Recursive MATrix) graph generator with Graph500 parameters.
//!
//! The paper's synthetic workloads are "RMAT graphs (Graph500 parameters)"
//! with "a 16x undirected (32x directed) edge factor" (Table I): a graph of
//! SCALE `s` has `2^s` vertices and `2^s * 16` undirected edges. Graph500
//! fixes the quadrant probabilities at A=0.57, B=0.19, C=0.19, D=0.05.
//!
//! Each edge is generated independently by descending `s` levels of the
//! recursive adjacency-matrix partition, which makes generation trivially
//! parallel and — more importantly for us — deterministic per (seed, index):
//! the same stream can be regenerated for the static oracle and for every
//! shard count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::VertexId;

/// Graph500 RMAT quadrant probabilities.
pub const GRAPH500_A: f64 = 0.57;
pub const GRAPH500_B: f64 = 0.19;
pub const GRAPH500_C: f64 = 0.19;

/// Configuration for the RMAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Directed edges per vertex (Graph500 uses 16 undirected = 32 directed;
    /// the engine adds the reverse direction itself for undirected runs, so
    /// `edge_factor = 16` matches the paper's Table I).
    pub edge_factor: u32,
    /// Quadrant probabilities; `d` is implied (1 - a - b - c).
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
    /// When true, vertex ids are scrambled with a hash-based permutation so
    /// that id order carries no structural information (Graph500 requires
    /// this; it also prevents the consistent-hash partitioner from
    /// accidentally aligning with RMAT's quadrant structure).
    pub scramble: bool,
}

impl RmatConfig {
    /// Graph500 defaults at the given scale.
    pub fn graph500(scale: u32) -> Self {
        RmatConfig {
            scale,
            edge_factor: 16,
            a: GRAPH500_A,
            b: GRAPH500_B,
            c: GRAPH500_C,
            seed: 0x5eed_0001,
            scramble: true,
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of directed edges generated.
    pub fn num_edges(&self) -> u64 {
        self.num_vertices() * self.edge_factor as u64
    }
}

/// Generates the full edge list for `cfg`.
pub fn generate(cfg: &RmatConfig) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.num_edges() as usize;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        edges.push(one_edge(cfg, &mut rng));
    }
    edges
}

/// Generates a single RMAT edge.
fn one_edge(cfg: &RmatConfig, rng: &mut SmallRng) -> (VertexId, VertexId) {
    let mut src: u64 = 0;
    let mut dst: u64 = 0;
    let ab = cfg.a + cfg.b;
    let abc = ab + cfg.c;
    for _ in 0..cfg.scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < cfg.a {
            // top-left: no bits set
        } else if r < ab {
            dst |= 1;
        } else if r < abc {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    if cfg.scramble {
        (
            scramble_id(src, cfg.seed, cfg.scale),
            scramble_id(dst, cfg.seed, cfg.scale),
        )
    } else {
        (src, dst)
    }
}

/// A seeded **bijective** permutation of the `scale`-bit id domain, as
/// Graph500 requires (a lossy hash would merge vertices — ~37% of the id
/// space at typical scales — and distort both |V| and the degree
/// distribution). Built from operations that are individually invertible on
/// an s-bit domain: xor with a constant, multiplication by an odd number
/// modulo 2^s, and xorshift-right.
#[inline]
fn scramble_id(v: u64, seed: u64, scale: u32) -> u64 {
    let mask = (1u64 << scale) - 1;
    let half = (scale / 2).max(1);
    let mut x = (v ^ seed) & mask;
    for round in 0..3u32 {
        // Odd multiplier: bijective mod 2^scale.
        x = x.wrapping_mul(0xd134_2543_de82_ef95) & mask;
        // Xorshift: invertible on the s-bit domain.
        x ^= x >> half;
        // Seeded offset: bijective.
        x = x.wrapping_add(seed.rotate_left(round * 13)) & mask;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_config() {
        let cfg = RmatConfig::graph500(10);
        assert_eq!(cfg.num_vertices(), 1024);
        assert_eq!(cfg.num_edges(), 16 * 1024);
        let edges = generate(&cfg);
        assert_eq!(edges.len(), 16 * 1024);
        let n = cfg.num_vertices();
        assert!(edges.iter().all(|&(s, d)| s < n && d < n));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RmatConfig::graph500(8);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = RmatConfig { seed: 42, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn skew_produces_heavy_hitters() {
        // RMAT graphs are scale-free: the most popular vertex should have
        // far more than the average degree.
        let cfg = RmatConfig {
            scramble: false,
            ..RmatConfig::graph500(12)
        };
        let edges = generate(&cfg);
        let mut deg = vec![0u64; cfg.num_vertices() as usize];
        for &(s, d) in &edges {
            deg[s as usize] += 1;
            deg[d as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = 2 * edges.len() as u64 / cfg.num_vertices();
        assert!(
            max > avg * 10,
            "expected power-law skew: max {max} vs avg {avg}"
        );
    }

    #[test]
    fn scramble_is_a_bijection() {
        for scale in [1u32, 4, 10] {
            let n = 1u64 << scale;
            let mut seen = std::collections::HashSet::new();
            for v in 0..n {
                let s = scramble_id(v, 0x5eed, scale);
                assert!(s < n, "out of domain");
                assert!(seen.insert(s), "collision at scale {scale}");
            }
        }
    }

    #[test]
    fn scramble_decorrelates_ids_from_degree() {
        // Without scramble, vertex 0 is the hottest id. With scramble the
        // hot vertex should land elsewhere almost surely.
        let cfg = RmatConfig::graph500(12);
        let edges = generate(&cfg);
        let mut deg = std::collections::HashMap::new();
        for &(s, d) in &edges {
            *deg.entry(s).or_insert(0u64) += 1;
            *deg.entry(d).or_insert(0u64) += 1;
        }
        let (hot, _) = deg.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_ne!(*hot, 0, "scramble left vertex 0 the hottest");
    }
}
