//! Preferential-attachment ("social network") generator.
//!
//! Stand-in for the paper's Twitter and Friendster datasets (Table I), which
//! are not redistributable at their original multi-billion-edge scale. Both
//! are social graphs with heavy-tailed degree distributions; the classic
//! Barabási–Albert process reproduces that shape: each arriving vertex
//! attaches `m` edges to existing vertices chosen proportionally to degree.
//!
//! Sampling proportional-to-degree uses the repeated-endpoints trick: every
//! endpoint of every generated edge is pushed into a pool; a uniform draw
//! from the pool is a degree-proportional draw. Generation is O(E).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::VertexId;

/// Configuration for the preferential-attachment generator.
#[derive(Debug, Clone, Copy)]
pub struct SocialConfig {
    /// Total number of vertices.
    pub num_vertices: u64,
    /// Edges attached per arriving vertex.
    pub edges_per_vertex: u32,
    /// RNG seed.
    pub seed: u64,
}

impl SocialConfig {
    /// A Twitter-shaped configuration: follower-graph-like skew
    /// (the real dataset has ~70 edges/vertex; we keep the paper's relative
    /// density scaled by whatever `num_vertices` the caller picks).
    pub fn twitter_like(num_vertices: u64, seed: u64) -> Self {
        SocialConfig {
            num_vertices,
            edges_per_vertex: 16,
            seed,
        }
    }

    /// A Friendster-shaped configuration (denser friendship graph).
    pub fn friendster_like(num_vertices: u64, seed: u64) -> Self {
        SocialConfig {
            num_vertices,
            edges_per_vertex: 28,
            seed,
        }
    }

    /// Number of directed edges the generator will emit.
    pub fn num_edges(&self) -> u64 {
        // The first `m+1` vertices form a seed clique path; subsequent
        // vertices add `m` edges each.
        let m = self.edges_per_vertex as u64;
        if self.num_vertices <= m + 1 {
            return self.num_vertices.saturating_sub(1);
        }
        m + (self.num_vertices - m - 1) * m
    }
}

/// Generates the edge list, in arrival order (vertex `t`'s edges appear
/// before vertex `t+1`'s). Shuffle via `stream::shuffle` for randomized
/// ingestion as the paper does.
pub fn generate(cfg: &SocialConfig) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let m = cfg.edges_per_vertex as usize;
    let n = cfg.num_vertices;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(cfg.num_edges() as usize);
    // Degree-proportional endpoint pool.
    let mut pool: Vec<VertexId> = Vec::with_capacity(cfg.num_edges() as usize * 2);

    // Seed: a path over the first min(n, m+1) vertices so every early vertex
    // has nonzero degree.
    let seed_count = n.min(m as u64 + 1);
    for v in 1..seed_count {
        edges.push((v - 1, v));
        pool.push(v - 1);
        pool.push(v);
    }

    let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
    for v in seed_count..n {
        chosen.clear();
        // Draw m distinct degree-proportional targets.
        let mut guard = 0;
        while chosen.len() < m && guard < m * 50 {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((v, t));
            pool.push(v);
            pool.push(t);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_prediction() {
        let cfg = SocialConfig {
            num_vertices: 1000,
            edges_per_vertex: 8,
            seed: 1,
        };
        let edges = generate(&cfg);
        assert_eq!(edges.len() as u64, cfg.num_edges());
    }

    #[test]
    fn ids_in_range_no_self_loops() {
        let cfg = SocialConfig {
            num_vertices: 500,
            edges_per_vertex: 4,
            seed: 2,
        };
        for (s, d) in generate(&cfg) {
            assert!(s < 500 && d < 500);
            assert_ne!(s, d);
        }
    }

    #[test]
    fn deterministic() {
        let cfg = SocialConfig::twitter_like(2000, 7);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let cfg = SocialConfig {
            num_vertices: 5000,
            edges_per_vertex: 4,
            seed: 3,
        };
        let edges = generate(&cfg);
        let mut deg = vec![0u64; 5000];
        for &(s, d) in &edges {
            deg[s as usize] += 1;
            deg[d as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = 2 * edges.len() as u64 / 5000;
        assert!(max > avg * 8, "no hub emerged: max {max}, avg {avg}");
    }

    #[test]
    fn early_vertices_accumulate_degree() {
        // Rich-get-richer: seed vertices should on average out-degree later ones.
        let cfg = SocialConfig {
            num_vertices: 4000,
            edges_per_vertex: 4,
            seed: 4,
        };
        let edges = generate(&cfg);
        let mut deg = vec![0u64; 4000];
        for &(s, d) in &edges {
            deg[s as usize] += 1;
            deg[d as usize] += 1;
        }
        let early: u64 = deg[..200].iter().sum();
        let late: u64 = deg[3800..].iter().sum();
        assert!(early > late * 2, "early {early} vs late {late}");
    }

    #[test]
    fn tiny_graphs_degenerate_gracefully() {
        let cfg = SocialConfig {
            num_vertices: 3,
            edges_per_vertex: 8,
            seed: 5,
        };
        let edges = generate(&cfg);
        assert_eq!(edges.len(), 2); // a path 0-1-2
    }
}
