//! # remo-gen — workload generation
//!
//! Deterministic, seeded graph generators and stream tooling for the
//! reproduction's experiments:
//!
//! - [`rmat`]: RMAT with Graph500 parameters (identical to the paper's
//!   synthetic workloads).
//! - [`social`]: preferential attachment (Twitter/Friendster stand-ins).
//! - [`web`]: copying-model web graphs (SK2005/Webgraph stand-ins).
//! - [`random`]: Erdős–Rényi and Watts–Strogatz controls.
//! - [`stream`]: shuffle / split / weight-decorate edge streams, matching
//!   the paper's ingestion methodology (§V-A).
//! - [`datasets`]: the Table I stand-in registry used by the benches.
//!
//! Everything is deterministic per seed so that the dynamic engine, the
//! static oracle, and every shard-count configuration see the same graph.

pub mod datasets;
pub mod random;
pub mod rmat;
pub mod social;
pub mod stream;
pub mod web;

/// Vertex identifier (matches `remo_store::VertexId`; the generator crate is
/// dependency-free by design).
pub type VertexId = u64;

pub use datasets::{table_row, Dataset, DatasetRow};
pub use rmat::RmatConfig;
pub use social::SocialConfig;
pub use web::WebConfig;
