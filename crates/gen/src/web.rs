//! Copying-model web graph generator.
//!
//! Stand-in for the paper's SK2005 and Webgraph crawls (Table I). Web graphs
//! differ from social graphs in two ways that matter for event processing:
//! strong *link locality* (pages link within their site) and power-law
//! in-degree produced by *link copying* (new pages copy outlinks of an
//! existing page). The Kleinberg/Kumar copying model captures both: a new
//! vertex picks a random "prototype" and copies each of its outlinks with
//! probability `copy_prob`, otherwise linking to a vertex in its own
//! neighbourhood window (host locality).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::VertexId;

/// Configuration for the copying-model generator.
#[derive(Debug, Clone, Copy)]
pub struct WebConfig {
    pub num_vertices: u64,
    /// Outlinks per page.
    pub out_degree: u32,
    /// Probability of copying a prototype's link instead of a local link.
    pub copy_prob: f64,
    /// Size of the "same host" id window for local links.
    pub locality_window: u64,
    pub seed: u64,
}

impl WebConfig {
    /// An SK2005-shaped configuration.
    pub fn sk_like(num_vertices: u64, seed: u64) -> Self {
        WebConfig {
            num_vertices,
            out_degree: 18,
            copy_prob: 0.5,
            locality_window: 64,
            seed,
        }
    }

    /// Number of directed edges generated.
    pub fn num_edges(&self) -> u64 {
        self.num_vertices.saturating_sub(1) * self.out_degree as u64
    }
}

/// Generates the edge list in page-arrival order.
pub fn generate(cfg: &WebConfig) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let d = cfg.out_degree as usize;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(cfg.num_edges() as usize);
    // out[v] lists the first few outlinks of v, used as copy prototypes.
    let mut out: Vec<Vec<VertexId>> = vec![Vec::new(); cfg.num_vertices as usize];

    for v in 1..cfg.num_vertices {
        let prototype = rng.gen_range(0..v);
        for slot in 0..d {
            let proto_links = &out[prototype as usize];
            let target = if !proto_links.is_empty() && rng.gen::<f64>() < cfg.copy_prob {
                proto_links[rng.gen_range(0..proto_links.len())]
            } else {
                // Local link within the id window (same "host").
                let lo = v.saturating_sub(cfg.locality_window);
                rng.gen_range(lo..v)
            };
            if target != v {
                edges.push((v, target));
                if out[v as usize].len() < d {
                    out[v as usize].push(target);
                }
            }
            let _ = slot;
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_close_to_prediction() {
        let cfg = WebConfig::sk_like(1000, 1);
        let edges = generate(&cfg);
        // Self-copy collisions drop a tiny number of edges.
        assert!(edges.len() as u64 <= cfg.num_edges());
        assert!(edges.len() as u64 > cfg.num_edges() * 95 / 100);
    }

    #[test]
    fn deterministic() {
        let cfg = WebConfig::sk_like(500, 11);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn locality_dominates_link_targets() {
        let cfg = WebConfig {
            num_vertices: 5000,
            out_degree: 10,
            copy_prob: 0.3,
            locality_window: 32,
            seed: 2,
        };
        let edges = generate(&cfg);
        let local = edges.iter().filter(|&&(s, d)| s.abs_diff(d) <= 32).count();
        assert!(
            local * 2 > edges.len(),
            "expected majority-local links: {local}/{}",
            edges.len()
        );
    }

    #[test]
    fn copying_creates_indegree_skew() {
        let cfg = WebConfig {
            num_vertices: 5000,
            out_degree: 10,
            copy_prob: 0.7,
            locality_window: 1000,
            seed: 3,
        };
        let edges = generate(&cfg);
        let mut indeg = vec![0u64; 5000];
        for &(_, d) in &edges {
            indeg[d as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let avg = edges.len() as u64 / 5000;
        assert!(max > avg * 10, "no popular page: max {max} avg {avg}");
    }

    #[test]
    fn no_self_loops_or_out_of_range() {
        let cfg = WebConfig::sk_like(300, 4);
        for (s, d) in generate(&cfg) {
            assert_ne!(s, d);
            assert!(s < 300 && d < 300);
        }
    }
}
