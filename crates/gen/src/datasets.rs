//! Dataset registry: laptop-scale stand-ins for the paper's Table I.
//!
//! The paper evaluates on Friendster, Twitter, SK2005, a 257-billion-edge
//! Webgraph crawl, and RMAT graphs. The real datasets are multi-terabyte and
//! unavailable here, so each gets a synthetic stand-in whose *generator*
//! matches its structural family (see DESIGN.md §3.3):
//!
//! | Paper dataset | Stand-in generator | Why |
//! |---|---|---|
//! | Twitter      | preferential attachment, m=16 | follower-graph power law |
//! | Friendster   | preferential attachment, m=28 | denser friendship graph |
//! | SK2005       | copying model, strong locality | web crawl of one domain |
//! | Webgraph     | copying model, weaker locality, larger | open web crawl |
//! | RMAT(scale)  | RMAT, Graph500 parameters | identical to the paper |
//!
//! `scale` multiplies the default vertex counts so benches can dial workload
//! size (the paper's absolute sizes are out of laptop reach; shapes are not).

use crate::random::{erdos_renyi, watts_strogatz, ErConfig, WsConfig};
use crate::rmat::{self, RmatConfig};
use crate::social::{self, SocialConfig};
use crate::web::{self, WebConfig};
use crate::VertexId;

/// Identifies a workload in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Twitter stand-in (preferential attachment).
    TwitterLike,
    /// Friendster stand-in (denser preferential attachment).
    FriendsterLike,
    /// SK2005 stand-in (copying model, strong host locality).
    Sk2005Like,
    /// Webgraph stand-in (copying model, larger/looser).
    WebgraphLike,
    /// RMAT at the given scale, Graph500 parameters.
    Rmat(u32),
    /// Uniform control graph.
    ErdosRenyi,
    /// Small-world control graph.
    SmallWorld,
}

impl Dataset {
    /// The real-world stand-ins used by Fig. 5.
    pub const REAL_WORLD: [Dataset; 4] = [
        Dataset::TwitterLike,
        Dataset::FriendsterLike,
        Dataset::Sk2005Like,
        Dataset::WebgraphLike,
    ];

    /// Display name (mirrors Table I rows).
    pub fn name(&self) -> String {
        match self {
            Dataset::TwitterLike => "Twitter-like".into(),
            Dataset::FriendsterLike => "Friendster-like".into(),
            Dataset::Sk2005Like => "SK2005-like".into(),
            Dataset::WebgraphLike => "Webgraph-like".into(),
            Dataset::Rmat(s) => format!("RMAT{s}"),
            Dataset::ErdosRenyi => "ErdosRenyi".into(),
            Dataset::SmallWorld => "SmallWorld".into(),
        }
    }

    /// Default vertex count at `scale = 1.0` (chosen so every Fig. 5 cell
    /// finishes in seconds on a laptop while keeping relative densities of
    /// Table I: Friendster densest, web graphs largest vertex counts).
    fn base_vertices(&self) -> u64 {
        match self {
            Dataset::TwitterLike => 60_000,
            Dataset::FriendsterLike => 50_000,
            Dataset::Sk2005Like => 80_000,
            Dataset::WebgraphLike => 160_000,
            Dataset::Rmat(s) => 1u64 << s,
            Dataset::ErdosRenyi => 60_000,
            Dataset::SmallWorld => 60_000,
        }
    }

    /// Generates the directed edge stream at a size multiplier `scale`
    /// (ignored for RMAT, whose scale is in the variant).
    pub fn generate(&self, scale: f64, seed: u64) -> Vec<(VertexId, VertexId)> {
        let n = ((self.base_vertices() as f64) * scale).round().max(4.0) as u64;
        match self {
            Dataset::TwitterLike => social::generate(&SocialConfig::twitter_like(n, seed)),
            Dataset::FriendsterLike => social::generate(&SocialConfig::friendster_like(n, seed)),
            Dataset::Sk2005Like => web::generate(&WebConfig::sk_like(n, seed)),
            Dataset::WebgraphLike => web::generate(&WebConfig {
                num_vertices: n,
                out_degree: 12,
                copy_prob: 0.6,
                locality_window: 512,
                seed,
            }),
            Dataset::Rmat(s) => rmat::generate(&RmatConfig {
                seed,
                ..RmatConfig::graph500(*s)
            }),
            Dataset::ErdosRenyi => erdos_renyi(&ErConfig {
                num_vertices: n,
                num_edges: n * 16,
                seed,
            }),
            Dataset::SmallWorld => watts_strogatz(&WsConfig {
                num_vertices: n,
                k: 8,
                beta: 0.1,
                seed,
            }),
        }
    }
}

/// A Table I-style row describing a generated instance.
#[derive(Debug, Clone)]
pub struct DatasetRow {
    pub name: String,
    pub vertices: u64,
    pub edges: u64,
    /// Bytes of the raw `[src, dst]` pair representation (the paper's
    /// "OnDiskSpace" column measures the edge-list files).
    pub on_disk_bytes: u64,
}

/// Generates an instance and summarizes it as a Table I row.
pub fn table_row(ds: Dataset, scale: f64, seed: u64) -> DatasetRow {
    let edges = ds.generate(scale, seed);
    let mut max_v = 0;
    let mut seen = std::collections::HashSet::new();
    for &(s, d) in &edges {
        max_v = max_v.max(s).max(d);
        seen.insert(s);
        seen.insert(d);
    }
    DatasetRow {
        name: ds.name(),
        vertices: seen.len() as u64,
        edges: edges.len() as u64,
        on_disk_bytes: (edges.len() * 16) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_generates_nonempty() {
        for ds in [
            Dataset::TwitterLike,
            Dataset::FriendsterLike,
            Dataset::Sk2005Like,
            Dataset::WebgraphLike,
            Dataset::Rmat(10),
            Dataset::ErdosRenyi,
            Dataset::SmallWorld,
        ] {
            let e = ds.generate(0.05, 1);
            assert!(!e.is_empty(), "{} generated nothing", ds.name());
        }
    }

    #[test]
    fn scale_multiplies_size() {
        let small = Dataset::TwitterLike.generate(0.05, 1).len();
        let big = Dataset::TwitterLike.generate(0.1, 1).len();
        assert!(big > small * 3 / 2, "scale had no effect: {small} -> {big}");
    }

    #[test]
    fn table_row_is_consistent() {
        let row = table_row(Dataset::ErdosRenyi, 0.02, 3);
        assert_eq!(row.on_disk_bytes, row.edges * 16);
        assert!(row.vertices > 0 && row.edges > 0);
    }

    #[test]
    fn friendster_denser_than_twitter() {
        // Table I: Friendster has a higher edge/vertex ratio than Twitter's
        // stand-in configuration here.
        let t = table_row(Dataset::TwitterLike, 0.05, 1);
        let f = table_row(Dataset::FriendsterLike, 0.05, 1);
        assert!(
            f.edges * t.vertices > t.edges * f.vertices,
            "Friendster-like should be denser"
        );
    }
}
