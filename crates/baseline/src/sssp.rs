//! Static Single Source Shortest Path (Dijkstra) on CSR.
//!
//! Oracle and baseline for the incremental SSSP algorithm. Costs follow the
//! paper's convention (Algorithm 5): the source's value is **1** and a
//! neighbour reached over an edge of weight `w` costs `value + w`; unreached
//! vertices hold `u64::MAX`.

use remo_store::{Csr, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost assigned to unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// Dijkstra from `source`; returns the cost of every vertex.
pub fn sssp_costs(g: &Csr, source: VertexId) -> Vec<u64> {
    let mut costs = vec![UNREACHED; g.num_vertices()];
    if g.num_vertices() == 0 {
        return costs;
    }
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    costs[source as usize] = 1;
    heap.push(Reverse((1, source)));
    while let Some(Reverse((cost, v))) = heap.pop() {
        if cost > costs[v as usize] {
            continue; // stale heap entry
        }
        for (&n, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            let candidate = cost.saturating_add(w);
            if candidate < costs[n as usize] {
                costs[n as usize] = candidate;
                heap.push(Reverse((candidate, n)));
            }
        }
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(n: usize, edges: &[(u64, u64, u64)]) -> Csr {
        let mut sym = Vec::new();
        for &(s, d, w) in edges {
            sym.push((s, d, w));
            sym.push((d, s, w));
        }
        Csr::from_weighted_edges(n, &sym)
    }

    #[test]
    fn source_cost_is_one() {
        let g = weighted(2, &[(0, 1, 5)]);
        let c = sssp_costs(&g, 0);
        assert_eq!(c[0], 1);
        assert_eq!(c[1], 6);
    }

    #[test]
    fn picks_cheaper_indirect_path() {
        // 0 -10-> 2 direct, but 0 -1-> 1 -2-> 2 is cheaper.
        let g = weighted(3, &[(0, 2, 10), (0, 1, 1), (1, 2, 2)]);
        let c = sssp_costs(&g, 0);
        assert_eq!(c[2], 4); // 1 + 1 + 2
    }

    #[test]
    fn unreachable_is_max() {
        let g = weighted(3, &[(0, 1, 1)]);
        assert_eq!(sssp_costs(&g, 0)[2], UNREACHED);
    }

    #[test]
    fn equal_weights_degenerate_to_bfs_shape() {
        let g = weighted(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 1)]);
        let c = sssp_costs(&g, 0);
        assert_eq!(c, vec![1, 2, 3, 2]);
    }

    #[test]
    fn agrees_with_bfs_on_unit_weights() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 500;
        let mut edges = Vec::new();
        for _ in 0..3000 {
            let s = rng.gen_range(0..n as u64);
            let d = rng.gen_range(0..n as u64);
            if s != d {
                edges.push((s, d, 1));
            }
        }
        let g = weighted(n, &edges);
        let costs = sssp_costs(&g, 0);
        let levels = crate::bfs::bfs_levels(&g, 0);
        assert_eq!(costs, levels);
    }
}
