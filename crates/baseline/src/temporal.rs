//! Static earliest-arrival (temporal reachability) oracle on CSR.
//!
//! Edge weights are interaction timestamps; information starting at the
//! source (arrival 1, before all timestamps `>= 2`) crosses an interaction
//! at time τ iff it had arrived at either endpoint by τ, and then arrives
//! at the other endpoint *at* τ. A Dijkstra-style sweep in increasing
//! arrival order computes the fixpoint the incremental algorithm maintains
//! on-line.

use remo_store::{Csr, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Arrival for unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// Arrival of the source itself.
pub const SOURCE_ARRIVAL: u64 = 1;

/// Earliest arrival time from `source` for every vertex.
pub fn earliest_arrivals(g: &Csr, source: VertexId) -> Vec<u64> {
    let mut best = vec![UNREACHED; g.num_vertices()];
    if g.num_vertices() == 0 {
        return best;
    }
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    best[source as usize] = SOURCE_ARRIVAL;
    heap.push(Reverse((SOURCE_ARRIVAL, source)));
    while let Some(Reverse((arrival, v))) = heap.pop() {
        if arrival > best[v as usize] {
            continue; // stale
        }
        for (&n, &tau) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            // Time-respecting: the interaction must not predate our arrival.
            if tau >= arrival && tau < best[n as usize] {
                best[n as usize] = tau;
                heap.push(Reverse((tau, n)));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(n: usize, edges: &[(u64, u64, u64)]) -> Csr {
        let mut sym = Vec::new();
        for &(s, d, w) in edges {
            sym.push((s, d, w));
            sym.push((d, s, w));
        }
        Csr::from_weighted_edges(n, &sym)
    }

    #[test]
    fn respects_time_ordering() {
        // Ascending chain works, descending does not.
        let g = weighted(3, &[(0, 1, 5), (1, 2, 9)]);
        assert_eq!(earliest_arrivals(&g, 0), vec![1, 5, 9]);
        let g = weighted(3, &[(0, 1, 9), (1, 2, 5)]);
        assert_eq!(earliest_arrivals(&g, 0), vec![1, 9, UNREACHED]);
    }

    #[test]
    fn earliest_route_wins() {
        let g = weighted(3, &[(0, 1, 3), (1, 2, 20), (0, 2, 7)]);
        assert_eq!(earliest_arrivals(&g, 0)[2], 7);
    }

    #[test]
    fn equal_timestamp_is_traversable() {
        // Arriving exactly at τ still lets the interaction carry it.
        let g = weighted(3, &[(0, 1, 4), (1, 2, 4)]);
        assert_eq!(earliest_arrivals(&g, 0), vec![1, 4, 4]);
    }
}
