//! Static Connected Components on CSR (union-find oracle).
//!
//! The incremental CC algorithm (Algorithm 6) labels every vertex with the
//! *dominating* hash in its component — the maximum of `hash(id)` over
//! members (the paper's comparison keeps the larger `value`). The oracle
//! therefore exposes both views: the raw partition (canonical min-member
//! label) for structural checks, and the hash-dominator labelling for exact
//! state comparison with the dynamic engine.

use remo_store::{Csr, VertexId};

/// Union-find with path halving and union by size.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand; // path halving
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false if already merged.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

/// Component label per vertex: the smallest vertex id in its component.
/// Isolated vertices label themselves.
pub fn components_min_label(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    for (s, d, _) in g.edges() {
        uf.union(s as u32, d as u32);
    }
    // Min member per root.
    let mut min_of_root = vec![VertexId::MAX; n];
    for v in 0..n {
        let r = uf.find(v as u32) as usize;
        min_of_root[r] = min_of_root[r].min(v as VertexId);
    }
    (0..n)
        .map(|v| min_of_root[uf.find(v as u32) as usize])
        .collect()
}

/// Component label per vertex under an arbitrary "dominator" function:
/// every vertex gets `max(dominator(u))` over the members `u` of its
/// component. With `dominator = hash`, this is exactly the fixpoint of the
/// paper's incremental CC. Vertices with degree 0 are labelled
/// `dominator(v)` of themselves.
pub fn components_dominator_label(g: &Csr, dominator: impl Fn(VertexId) -> u64) -> Vec<u64> {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    for (s, d, _) in g.edges() {
        uf.union(s as u32, d as u32);
    }
    let mut max_of_root = vec![0u64; n];
    for v in 0..n {
        let r = uf.find(v as u32) as usize;
        max_of_root[r] = max_of_root[r].max(dominator(v as VertexId));
    }
    (0..n)
        .map(|v| max_of_root[uf.find(v as u32) as usize])
        .collect()
}

/// Number of connected components among vertices that have at least one
/// incident edge, plus isolated vertices counted individually.
pub fn component_count(g: &Csr) -> usize {
    let labels = components_min_label(g);
    let mut set = std::collections::HashSet::new();
    for l in labels {
        set.insert(l);
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, pairs: &[(u64, u64)]) -> Csr {
        let mut sym = Vec::new();
        for &(s, d) in pairs {
            sym.push((s, d));
            sym.push((d, s));
        }
        Csr::from_edges(n, &sym)
    }

    #[test]
    fn two_components() {
        let g = undirected(5, &[(0, 1), (1, 2), (3, 4)]);
        let l = components_min_label(&g);
        assert_eq!(l, vec![0, 0, 0, 3, 3]);
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let g = undirected(4, &[(0, 1)]);
        let l = components_min_label(&g);
        assert_eq!(l[2], 2);
        assert_eq!(l[3], 3);
        assert_eq!(component_count(&g), 3);
    }

    #[test]
    fn dominator_label_takes_max() {
        let g = undirected(4, &[(0, 1), (2, 3)]);
        // Dominator = id*10: comp {0,1} -> 10, comp {2,3} -> 30.
        let l = components_dominator_label(&g, |v| v * 10);
        assert_eq!(l, vec![10, 10, 30, 30]);
    }

    #[test]
    fn union_find_idempotent_union() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
    }

    #[test]
    fn chain_collapses_to_one_component() {
        let pairs: Vec<(u64, u64)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = undirected(100, &pairs);
        assert_eq!(component_count(&g), 1);
        let l = components_min_label(&g);
        assert!(l.iter().all(|&x| x == 0));
    }
}
