//! # remo-baseline — static construction and static algorithms
//!
//! The paper's evaluation is anchored by a *static* comparator: build an
//! optimized CSR from the same `[src, dst]` stream, then run a classical
//! algorithm over it (§V-B, Figures 3 and 4). This crate is that comparator
//! and doubles as the correctness oracle for every incremental algorithm:
//!
//! - [`construct`] — timed edge-list → CSR pipeline (with symmetrization).
//! - [`bfs`] — sequential + rayon-parallel level-synchronous BFS.
//! - [`sssp`] — Dijkstra.
//! - [`cc`] — union-find components, including the hash-dominator labelling
//!   the incremental algorithm converges to.
//! - [`stcon`] — multi-source reachability bitmasks.
//!
//! Conventions match the dynamic side exactly (source level/cost = 1,
//! unreached = `u64::MAX`) so states can be compared bit-for-bit.

pub mod bfs;
pub mod cc;
pub mod construct;
pub mod sssp;
pub mod stcon;
pub mod temporal;
pub mod widest;

pub use bfs::{bfs_levels, bfs_levels_parallel, UNREACHED};
pub use cc::{component_count, components_dominator_label, components_min_label, UnionFind};
pub use construct::{build_undirected, build_undirected_weighted, implied_vertices, symmetrize};
pub use sssp::sssp_costs;
pub use stcon::st_masks;
pub use temporal::earliest_arrivals;
pub use widest::widest_paths;
