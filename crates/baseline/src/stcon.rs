//! Static multi-source S-T connectivity on CSR.
//!
//! Oracle for the incremental multi S-T algorithm (Algorithm 7): for a set
//! of source vertices `S = {S_0..S_{k-1}}`, every vertex's state is the
//! bitmask of sources it can reach (bit `i` set iff connected to `S_i`).
//! Computed by one BFS per source; sources index into bits of a `u64`
//! (matching the fast-path state of the dynamic algorithm) so `k <= 64`.

use remo_store::{Csr, VertexId};

/// Per-vertex connectivity bitmask over up to 64 sources.
pub fn st_masks(g: &Csr, sources: &[VertexId]) -> Vec<u64> {
    assert!(sources.len() <= 64, "u64 mask supports at most 64 sources");
    let n = g.num_vertices();
    let mut masks = vec![0u64; n];
    let mut visited = vec![false; n];
    let mut frontier = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        let bit = 1u64 << i;
        visited.iter_mut().for_each(|v| *v = false);
        frontier.clear();
        frontier.push(s);
        visited[s as usize] = true;
        masks[s as usize] |= bit;
        while let Some(v) = frontier.pop() {
            for &nb in g.neighbors(v) {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    masks[nb as usize] |= bit;
                    frontier.push(nb);
                }
            }
        }
    }
    masks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, pairs: &[(u64, u64)]) -> Csr {
        let mut sym = Vec::new();
        for &(s, d) in pairs {
            sym.push((s, d));
            sym.push((d, s));
        }
        Csr::from_edges(n, &sym)
    }

    #[test]
    fn single_source_reachability() {
        let g = undirected(4, &[(0, 1), (1, 2)]);
        let m = st_masks(&g, &[0]);
        assert_eq!(m, vec![1, 1, 1, 0]);
    }

    #[test]
    fn two_sources_union_masks() {
        let g = undirected(5, &[(0, 1), (3, 4)]);
        let m = st_masks(&g, &[0, 3]);
        assert_eq!(m[0], 0b01);
        assert_eq!(m[1], 0b01);
        assert_eq!(m[2], 0b00);
        assert_eq!(m[3], 0b10);
        assert_eq!(m[4], 0b10);
    }

    #[test]
    fn source_in_both_components_sets_both_bits() {
        let g = undirected(3, &[(0, 1), (1, 2)]);
        let m = st_masks(&g, &[0, 2]);
        assert!(m.iter().all(|&x| x == 0b11));
    }

    #[test]
    fn no_sources_no_bits() {
        let g = undirected(3, &[(0, 1)]);
        assert_eq!(st_masks(&g, &[]), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_sources_panics() {
        let g = undirected(2, &[(0, 1)]);
        let sources: Vec<u64> = (0..65).map(|i| i % 2).collect();
        st_masks(&g, &sources);
    }
}
