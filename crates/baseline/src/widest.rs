//! Static widest-path (maximum bottleneck) oracle on CSR.
//!
//! Dijkstra with a max-heap over bottleneck values: the classic static
//! solution to the problem the incremental [`remo-algos` `IncWidest`]
//! algorithm maintains on-line. Source capacity is `u64::MAX`, unreached
//! vertices hold 0 — matching the dynamic side bit-for-bit.

use remo_store::{Csr, VertexId};
use std::collections::BinaryHeap;

/// Bottleneck of the source itself.
pub const SOURCE_CAPACITY: u64 = u64::MAX;

/// Bottleneck of unreached vertices.
pub const UNREACHED: u64 = 0;

/// Maximum-bottleneck capacity from `source` to every vertex.
pub fn widest_paths(g: &Csr, source: VertexId) -> Vec<u64> {
    let mut best = vec![UNREACHED; g.num_vertices()];
    if g.num_vertices() == 0 {
        return best;
    }
    let mut heap: BinaryHeap<(u64, VertexId)> = BinaryHeap::new();
    best[source as usize] = SOURCE_CAPACITY;
    heap.push((SOURCE_CAPACITY, source));
    while let Some((cap, v)) = heap.pop() {
        if cap < best[v as usize] {
            continue; // stale
        }
        for (&n, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            let candidate = cap.min(w);
            if candidate > best[n as usize] {
                best[n as usize] = candidate;
                heap.push((candidate, n));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(n: usize, edges: &[(u64, u64, u64)]) -> Csr {
        let mut sym = Vec::new();
        for &(s, d, w) in edges {
            sym.push((s, d, w));
            sym.push((d, s, w));
        }
        Csr::from_weighted_edges(n, &sym)
    }

    #[test]
    fn path_minimum_rules() {
        let g = weighted(4, &[(0, 1, 10), (1, 2, 4), (2, 3, 9)]);
        let b = widest_paths(&g, 0);
        assert_eq!(b, vec![SOURCE_CAPACITY, 10, 4, 4]);
    }

    #[test]
    fn picks_widest_alternative() {
        let g = weighted(3, &[(0, 2, 3), (0, 1, 10), (1, 2, 8)]);
        assert_eq!(widest_paths(&g, 0)[2], 8);
    }

    #[test]
    fn unreached_is_zero() {
        let g = weighted(4, &[(0, 1, 5)]);
        let b = widest_paths(&g, 0);
        assert_eq!(b[2], UNREACHED);
        assert_eq!(b[3], UNREACHED);
    }

    #[test]
    fn parallel_edges_take_the_fattest() {
        let g = Csr::from_weighted_edges(2, &[(0, 1, 3), (0, 1, 9), (1, 0, 3), (1, 0, 9)]);
        assert_eq!(widest_paths(&g, 0)[1], 9);
    }
}
