//! Static Breadth First Search on CSR.
//!
//! The paper's static comparator (Fig. 3, Fig. 4): a top-down,
//! level-synchronous BFS. Levels follow the paper's convention — the source
//! has level **1** (`start_vertex.level = 1`, Algorithm 1) and unreached
//! vertices hold "infinity" (`u64::MAX`).
//!
//! Two drivers are provided: a sequential frontier walk and a
//! rayon-parallelized per-level expansion. The parallel one stands in for
//! the paper's 24-rank static HavoqGT execution; the benches pick whichever
//! is faster at the given size (small graphs favour sequential).

use rayon::prelude::*;
use remo_store::{Csr, VertexId};

/// Level assigned to unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// Sequential top-down BFS; returns the level of every vertex.
pub fn bfs_levels(g: &Csr, source: VertexId) -> Vec<u64> {
    let mut levels = vec![UNREACHED; g.num_vertices()];
    if g.num_vertices() == 0 {
        return levels;
    }
    let mut frontier = vec![source];
    levels[source as usize] = 1;
    let mut next = Vec::new();
    let mut level = 1u64;
    while !frontier.is_empty() {
        level += 1;
        for &v in &frontier {
            for &n in g.neighbors(v) {
                if levels[n as usize] == UNREACHED {
                    levels[n as usize] = level;
                    next.push(n);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    levels
}

/// Parallel level-synchronous BFS. Each level's frontier is expanded with a
/// rayon fold/reduce; claiming a vertex uses a relaxed CAS on its level slot
/// (benign race: all writers write the same level).
pub fn bfs_levels_parallel(g: &Csr, source: VertexId) -> Vec<u64> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let n = g.num_vertices();
    let levels_vec = vec![UNREACHED; n];
    if n == 0 {
        return levels_vec;
    }
    // Reinterpret as atomics for the duration of the traversal.
    let levels: &[AtomicU64] =
        unsafe { std::slice::from_raw_parts(levels_vec.as_ptr() as *const AtomicU64, n) };
    levels[source as usize].store(1, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut level = 1u64;
    while !frontier.is_empty() {
        level += 1;
        let next: Vec<VertexId> = frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                for &nb in g.neighbors(v) {
                    if levels[nb as usize]
                        .compare_exchange(UNREACHED, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        acc.push(nb);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        frontier = next;
    }
    // Atomics release their claim when the slice borrow ends.
    let _ = levels;
    levels_vec
}

#[cfg(test)]
mod tests {
    use super::*;
    use remo_store::Csr;

    fn path_graph(n: usize) -> Csr {
        let mut e = Vec::new();
        for i in 0..n as u64 - 1 {
            e.push((i, i + 1));
            e.push((i + 1, i));
        }
        Csr::from_edges(n, &e)
    }

    #[test]
    fn path_levels_increment() {
        let g = path_graph(5);
        let l = bfs_levels(&g, 0);
        assert_eq!(l, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn disconnected_stays_unreached() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 0)]);
        let l = bfs_levels(&g, 0);
        assert_eq!(l[0], 1);
        assert_eq!(l[1], 2);
        assert_eq!(l[2], UNREACHED);
        assert_eq!(l[3], UNREACHED);
    }

    #[test]
    fn source_level_is_one() {
        let g = path_graph(3);
        assert_eq!(bfs_levels(&g, 1)[1], 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        // A mid-size random graph; both drivers must agree exactly.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 2000usize;
        let mut edges = Vec::new();
        for _ in 0..10_000 {
            let s = rng.gen_range(0..n as u64);
            let d = rng.gen_range(0..n as u64);
            edges.push((s, d));
            edges.push((d, s));
        }
        let g = Csr::from_edges(n, &edges);
        assert_eq!(bfs_levels(&g, 0), bfs_levels_parallel(&g, 0));
    }

    #[test]
    fn triangle_with_chord_prefers_shortest() {
        // 0-1, 1-2, 0-2: vertex 2 reachable at level 2, not 3.
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]);
        assert_eq!(bfs_levels(&g, 0), vec![1, 2, 2]);
    }
}
