//! Static graph construction pipeline.
//!
//! This is the left bar of the paper's Figure 3: "the time to fully load the
//! graph in memory (and perform the available optimizations, e.g. using the
//! CSR format)". Input is the identical `[src, dst]` pair stream the dynamic
//! engine ingests; output is an immutable CSR. For undirected experiments
//! the reverse edge is materialized during construction, matching Table I's
//! "graphs are made undirected with reverse edges where needed".

use remo_store::{Csr, VertexId};

/// Result of a timed static construction.
pub struct StaticBuild {
    pub csr: Csr,
    pub build_time: std::time::Duration,
}

/// Number of vertices implied by an edge list (max id + 1).
pub fn implied_vertices(edges: &[(VertexId, VertexId)]) -> usize {
    edges.iter().map(|&(s, d)| s.max(d) + 1).max().unwrap_or(0) as usize
}

/// Doubles a directed edge list into its undirected (symmetric) form.
pub fn symmetrize(edges: &[(VertexId, VertexId)]) -> Vec<(VertexId, VertexId)> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(s, d) in edges {
        out.push((s, d));
        out.push((d, s));
    }
    out
}

/// Symmetrizes a weighted edge list (reverse edge keeps the weight).
pub fn symmetrize_weighted(edges: &[(VertexId, VertexId, u64)]) -> Vec<(VertexId, VertexId, u64)> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(s, d, w) in edges {
        out.push((s, d, w));
        out.push((d, s, w));
    }
    out
}

/// Builds an undirected CSR from a directed pair stream, timing the
/// construction (symmetrize + two-pass counting sort + compression).
pub fn build_undirected(edges: &[(VertexId, VertexId)]) -> StaticBuild {
    let start = std::time::Instant::now();
    let sym = symmetrize(edges);
    let csr = Csr::from_edges(implied_vertices(edges), &sym);
    StaticBuild {
        csr,
        build_time: start.elapsed(),
    }
}

/// Builds an undirected weighted CSR from a weighted pair stream.
pub fn build_undirected_weighted(edges: &[(VertexId, VertexId, u64)]) -> StaticBuild {
    let start = std::time::Instant::now();
    let sym = symmetrize_weighted(edges);
    let n = edges
        .iter()
        .map(|&(s, d, _)| s.max(d) + 1)
        .max()
        .unwrap_or(0) as usize;
    let csr = Csr::from_weighted_edges(n, &sym);
    StaticBuild {
        csr,
        build_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrize_doubles() {
        let e = vec![(0u64, 1u64), (2, 3)];
        let s = symmetrize(&e);
        assert_eq!(s.len(), 4);
        assert!(s.contains(&(1, 0)));
        assert!(s.contains(&(3, 2)));
    }

    #[test]
    fn build_undirected_has_symmetric_degrees() {
        let edges = vec![(0u64, 1u64), (1, 2), (2, 0)];
        let b = build_undirected(&edges);
        assert_eq!(b.csr.num_edges(), 6);
        for v in 0..3 {
            assert_eq!(b.csr.degree(v), 2);
        }
    }

    #[test]
    fn implied_vertices_handles_gaps_and_empty() {
        assert_eq!(implied_vertices(&[]), 0);
        assert_eq!(implied_vertices(&[(0, 100)]), 101);
    }

    #[test]
    fn weighted_reverse_keeps_weight() {
        let b = build_undirected_weighted(&[(0, 1, 7)]);
        assert_eq!(b.csr.edge_weights(0), &[7]);
        assert_eq!(b.csr.edge_weights(1), &[7]);
    }
}
