//! Multi-query registry differential tests: every query attached to a
//! [`QueryRegistry`] must reach the **same fixpoint a solo run** of that
//! algorithm over the same stream reaches — across shard counts, storage
//! layouts, and transports; whether the query was attached before the
//! first edge or live in the middle of the stream; and across
//! detach/reattach cycles that reuse a slot (DESIGN.md §17).

use remo::gen::{stream, Dataset};
use remo::prelude::*;

fn dataset_edges(ds: Dataset, scale: f64, seed: u64) -> Vec<(u64, u64)> {
    let mut e = ds.generate(scale, seed);
    stream::shuffle(&mut e, seed ^ 0xfeed);
    e
}

/// Deduplicated undirected edge list (degree-count identity requires a
/// duplicate-free stream: a solo `DegreeCount` counts duplicate add
/// *events*, while an attach backfill replays stored *edges* once).
fn dedup(edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut seen = std::collections::HashSet::new();
    edges
        .iter()
        .copied()
        .filter(|&(a, b)| a != b && seen.insert(if a < b { (a, b) } else { (b, a) }))
        .collect()
}

/// Solo fixpoint of `algo` over `edges` with optional init sources.
fn solo_run<A: Algorithm<State = u64>>(
    algo: A,
    config: EngineConfig,
    sources: &[u64],
    edges: &[(u64, u64)],
) -> Vec<(u64, u64)> {
    let engine = Engine::new(algo, config);
    for &s in sources {
        engine.try_init_vertex(s).unwrap();
    }
    engine.try_ingest_pairs(edges).unwrap();
    engine.try_finish().unwrap().states.into_vec()
}

/// Projects one query out of a finished registry run.
fn projected(
    reg: &QueryRegistry<u64>,
    states: &Snapshot<RegPayload<u64>>,
    id: QueryId,
) -> Vec<(u64, u64)> {
    reg.project(states, id).into_vec()
}

/// Tentpole identity: BFS + CC + degree attached from the start, projected
/// columns byte-identical to solo runs — over the full shard × layout ×
/// transport grid.
#[test]
fn registry_matches_solo_across_grid() {
    let edges = dedup(&dataset_edges(Dataset::SmallWorld, 0.02, 41));
    let source = edges[0].0;
    for shards in [1usize, 2, 4] {
        for layout in [StorageLayout::DenseArena, StorageLayout::RhhRecord] {
            for transport in [TransportMode::Channel, TransportMode::Lanes] {
                let config = || {
                    EngineConfig::undirected(shards)
                        .with_storage(layout)
                        .with_transport(transport)
                };
                let want_bfs = solo_run(IncBfs, config(), &[source], &edges);
                let want_cc = solo_run(IncCc, config(), &[], &edges);
                let want_deg = solo_run(DegreeCount, config(), &[], &edges);

                let reg = QueryRegistry::<u64>::new();
                let engine = Engine::new(reg.clone(), config());
                let bfs = reg.attach(&engine, IncBfs, &[source], "bfs").unwrap();
                let cc = reg.attach(&engine, IncCc, &[], "cc").unwrap();
                let deg = reg.attach(&engine, DegreeCount, &[], "degree").unwrap();
                assert_eq!(reg.attached(), 3);
                engine.try_ingest_pairs(&edges).unwrap();
                let states = engine.try_finish().unwrap().states;

                let tag = format!("P={shards} {layout:?} {transport:?}");
                assert_eq!(projected(&reg, &states, bfs), want_bfs, "bfs {tag}");
                assert_eq!(projected(&reg, &states, cc), want_cc, "cc {tag}");
                assert_eq!(projected(&reg, &states, deg), want_deg, "degree {tag}");
            }
        }
    }
}

/// Live attach mid-stream: the backfill (prime + flood from stored
/// adjacency, no stream re-ingest) must land the late query on exactly
/// the fixpoint of a query that watched the whole stream.
#[test]
fn attach_mid_stream_matches_solo() {
    let edges = dedup(&dataset_edges(Dataset::TwitterLike, 0.03, 7));
    let source = edges[0].0;
    let cut = edges.len() / 2;
    for shards in [1usize, 3] {
        let config = EngineConfig::undirected(shards);
        let want_bfs = solo_run(IncBfs, config.clone(), &[source], &edges);
        let want_cc = solo_run(IncCc, config.clone(), &[], &edges);
        let want_deg = solo_run(DegreeCount, config.clone(), &[], &edges);

        let reg = QueryRegistry::<u64>::new();
        let engine = Engine::new(reg.clone(), config);
        // CC watches the whole stream; BFS and degree arrive mid-stream.
        let cc = reg.attach(&engine, IncCc, &[], "cc").unwrap();
        engine.try_ingest_pairs(&edges[..cut]).unwrap();
        engine.try_await_quiescence().unwrap();
        let bfs = reg.attach(&engine, IncBfs, &[source], "bfs-late").unwrap();
        let deg = reg.attach(&engine, DegreeCount, &[], "deg-late").unwrap();
        engine.try_ingest_pairs(&edges[cut..]).unwrap();
        let states = engine.try_finish().unwrap().states;

        assert_eq!(projected(&reg, &states, bfs), want_bfs, "late bfs P={shards}");
        assert_eq!(projected(&reg, &states, cc), want_cc, "cc P={shards}");
        assert_eq!(projected(&reg, &states, deg), want_deg, "late deg P={shards}");
    }
}

/// Attach during *in-flight* ingestion (no quiescent point): the two-phase
/// prime/flood handshake must absorb events racing the backfill.
#[test]
fn attach_against_in_flight_ingest_matches_solo() {
    let edges = dedup(&dataset_edges(Dataset::ErdosRenyi, 0.03, 13));
    let source = edges[0].0;
    let cut = edges.len() / 3;
    let config = EngineConfig::undirected(4);
    let want = solo_run(IncBfs, config.clone(), &[source], &edges);

    let reg = QueryRegistry::<u64>::new();
    let engine = Engine::new(reg.clone(), config);
    engine.try_ingest_pairs(&edges[..cut]).unwrap();
    // No quiescence wait: the attach handshake races live topology events.
    let bfs = reg.attach(&engine, IncBfs, &[source], "bfs-racing").unwrap();
    engine.try_ingest_pairs(&edges[cut..]).unwrap();
    let states = engine.try_finish().unwrap().states;
    assert_eq!(projected(&reg, &states, bfs), want);
}

/// Detach reclaims the slot; a successor query attached into the reused
/// slot starts from bottom and converges to its own solo fixpoint, and the
/// detached handle goes stale.
#[test]
fn detach_then_reattach_reuses_slot_cleanly() {
    let edges = dedup(&dataset_edges(Dataset::SmallWorld, 0.02, 29));
    let source = edges[0].0;
    let config = EngineConfig::undirected(2);
    let want_cc = solo_run(IncCc, config.clone(), &[], &edges);

    let reg = QueryRegistry::<u64>::new();
    let engine = Engine::new(reg.clone(), config);
    let deg = reg.attach(&engine, DegreeCount, &[], "deg").unwrap();
    let bfs = reg.attach(&engine, IncBfs, &[source], "bfs").unwrap();
    assert_eq!(deg.slot(), 0);
    assert_eq!(bfs.slot(), 1);
    engine.try_ingest_pairs(&edges[..edges.len() / 2]).unwrap();
    engine.try_await_quiescence().unwrap();

    reg.detach(&engine, deg).unwrap();
    assert_eq!(reg.attached(), 1);
    assert!(reg.query_counters(deg).is_none(), "stale handle");
    assert!(
        reg.detach(&engine, deg).is_err(),
        "double detach must fail loudly"
    );

    // The successor reuses slot 0 under a fresh generation.
    let cc = reg.attach(&engine, IncCc, &[], "cc").unwrap();
    assert_eq!(cc.slot(), 0);
    engine.try_ingest_pairs(&edges[edges.len() / 2..]).unwrap();
    let states = engine.try_finish().unwrap().states;
    assert_eq!(projected(&reg, &states, cc), want_cc);
}

/// Triggers observe registry state changes exactly like solo state
/// changes: a "When" query over one column fires once per matching vertex.
#[test]
fn triggers_fire_through_registry_columns() {
    let edges: Vec<(u64, u64)> = (0..32).map(|i| (i, i + 1)).collect();
    let config = EngineConfig::undirected(2);

    // Solo reference: count vertices that ever reach BFS level <= 3.
    let mut solo = EngineBuilder::new(IncBfs, config.clone());
    solo.trigger("near", |_, lvl: &u64| *lvl != 0 && *lvl <= 3);
    let solo_engine = solo.build();
    solo_engine.try_init_vertex(0).unwrap();
    solo_engine.try_ingest_pairs(&edges).unwrap();
    let solo_fired = solo_engine.trigger_events().clone();
    solo_engine.try_finish().unwrap();
    let want: usize = solo_fired.try_iter().count();

    let reg = QueryRegistry::<u64>::new();
    let mut builder = EngineBuilder::new(reg.clone(), config);
    builder.trigger("near", |_, s: &RegPayload<u64>| {
        s.cell(0).is_some_and(|lvl| *lvl != 0 && *lvl <= 3)
    });
    let engine = builder.build();
    let _bfs = reg.attach(&engine, IncBfs, &[0], "bfs").unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    let fired = engine.trigger_events().clone();
    engine.try_finish().unwrap();
    assert_eq!(fired.try_iter().count(), want);
}

/// Weighted queries ride the same envelopes: SSSP through the registry
/// equals solo SSSP on a weighted stream.
#[test]
fn weighted_sssp_matches_solo_through_registry() {
    let base = dedup(&dataset_edges(Dataset::SmallWorld, 0.02, 3));
    let weighted: Vec<(u64, u64, u64)> = base
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| (a, b, 1 + (i as u64 % 7)))
        .collect();
    let source = weighted[0].0;
    let config = EngineConfig::undirected(3);

    let solo_engine = Engine::new(IncSssp, config.clone());
    solo_engine.try_init_vertex(source).unwrap();
    solo_engine.try_ingest_weighted(&weighted).unwrap();
    let want = solo_engine.try_finish().unwrap().states.into_vec();

    let reg = QueryRegistry::<u64>::new();
    let engine = Engine::new(reg.clone(), config);
    let sssp = reg.attach(&engine, IncSssp, &[source], "sssp").unwrap();
    engine.try_ingest_weighted(&weighted).unwrap();
    let states = engine.try_finish().unwrap().states;
    assert_eq!(projected(&reg, &states, sssp), want);
}

/// Per-query telemetry: counters move independently, the hub exports them,
/// and the backfill histogram records one sample per attach.
#[test]
fn registry_telemetry_reports_per_query_rows() {
    let edges = dedup(&dataset_edges(Dataset::SmallWorld, 0.02, 17));
    let source = edges[0].0;
    let reg = QueryRegistry::<u64>::new();
    let engine = Engine::new(reg.clone(), EngineConfig::undirected(2));
    let bfs = reg.attach(&engine, IncBfs, &[source], "bfs").unwrap();
    let deg = reg.attach(&engine, DegreeCount, &[], "degree").unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();

    let (bfs_sent, bfs_applied) = reg.query_counters(bfs).unwrap();
    let (_deg_sent, deg_applied) = reg.query_counters(deg).unwrap();
    assert!(bfs_sent > 0, "bfs propagates");
    assert!(bfs_applied > 0, "bfs applies levels");
    assert!(deg_applied > 0, "degree applies counts");

    let hub = engine.telemetry();
    let prom = hub.render_prometheus();
    assert!(prom.contains("remo_queries_attached 2"), "{prom}");
    assert!(prom.contains("remo_query_envelopes_sent_total{query=\"bfs\",slot=\"0\"}"));
    assert!(prom.contains("remo_query_updates_applied_total{query=\"degree\",slot=\"1\"}"));
    assert!(prom.contains("remo_attach_backfill_seconds_count 2"));
    let json = hub.render_json();
    assert!(json.contains("\"queries\":{\"attached\":2"));
    assert!(json.contains("\"name\":\"bfs\""));
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "queries object keeps the JSON balanced");
    engine.try_finish().unwrap();
}

/// Multi S-T connectivity through the registry (the attack-graph example's
/// engine shape): reachability masks equal the solo run's.
#[test]
fn stcon_masks_match_solo_through_registry() {
    let edges = dedup(&dataset_edges(Dataset::WebgraphLike, 0.02, 53));
    let sources = vec![edges[0].0, edges[1].0, edges[2].0];
    let config = EngineConfig::undirected(2);

    let solo_engine = Engine::new(IncStCon::new(sources.clone()), config.clone());
    for &s in &sources {
        solo_engine.try_init_vertex(s).unwrap();
    }
    solo_engine.try_ingest_pairs(&edges).unwrap();
    let want = solo_engine.try_finish().unwrap().states.into_vec();

    let reg = QueryRegistry::<u64>::new();
    let engine = Engine::new(reg.clone(), config);
    let st = reg
        .attach(&engine, IncStCon::new(sources.clone()), &sources, "stcon")
        .unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    let states = engine.try_finish().unwrap().states;
    assert_eq!(projected(&reg, &states, st), want);
}
