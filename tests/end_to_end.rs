//! Workspace end-to-end tests: the full pipeline (generator → engine →
//! algorithms → snapshot/triggers) checked against the static baseline on
//! realistic workloads, across both termination detectors and several shard
//! counts. These are the "does the reproduced system actually behave like
//! the paper says" tests.

use remo::algos::UNREACHED;
use remo::baseline as oracle;
use remo::gen::{stream, Dataset};
use remo::prelude::*;
use remo::store::Csr;

fn dataset_edges(ds: Dataset, scale: f64, seed: u64) -> Vec<(u64, u64)> {
    let mut e = ds.generate(scale, seed);
    stream::shuffle(&mut e, seed ^ 0xfeed);
    e
}

fn undirected_csr(edges: &[(u64, u64)]) -> Csr {
    let n = oracle::implied_vertices(edges);
    Csr::from_edges(n, &oracle::symmetrize(edges))
}

/// Fig. 3's correctness backbone: live BFS maintained during construction
/// equals static BFS on the final graph, on a real-ish workload.
#[test]
fn live_bfs_equals_static_on_social_graph() {
    let edges = dataset_edges(Dataset::TwitterLike, 0.05, 11);
    let source = edges[0].0;

    let engine = Engine::new(IncBfs, EngineConfig::undirected(4));
    engine.try_init_vertex(source).unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    let dynamic = engine.try_finish().unwrap().states;

    let csr = undirected_csr(&edges);
    let want = oracle::bfs_levels(&csr, source);
    for (v, &level) in dynamic.iter() {
        assert_eq!(level, want[v as usize], "vertex {v}");
    }
}

/// The same check for every stand-in dataset family (topology diversity is
/// the point of Fig. 5).
#[test]
fn live_cc_equals_union_find_on_every_dataset() {
    for ds in [
        Dataset::TwitterLike,
        Dataset::FriendsterLike,
        Dataset::Sk2005Like,
        Dataset::WebgraphLike,
        Dataset::ErdosRenyi,
        Dataset::SmallWorld,
        Dataset::Rmat(9),
    ] {
        let edges = dataset_edges(ds, 0.02, 23);
        let engine = Engine::new(IncCc, EngineConfig::undirected(4));
        engine.try_ingest_pairs(&edges).unwrap();
        let dynamic = engine.try_finish().unwrap().states;

        let csr = undirected_csr(&edges);
        let want = oracle::components_dominator_label(&csr, cc_label);
        for (v, &label) in dynamic.iter() {
            assert_eq!(label, want[v as usize], "{}: vertex {v}", ds.name());
        }
    }
}

/// Fig. 4 semantics: a snapshot taken at a quiescent boundary equals a
/// static run over exactly the ingested prefix — "functionally equivalent
/// to a snapshot (or processing of a batch) that ended at that specific
/// time point" (§VI-A).
#[test]
fn snapshot_equals_static_run_on_prefix() {
    let edges = dataset_edges(Dataset::SmallWorld, 0.03, 5);
    let source = edges[0].0;
    let cut = edges.len() / 2;

    let mut engine = Engine::new(IncBfs, EngineConfig::undirected(4));
    engine.try_init_vertex(source).unwrap();
    engine.try_ingest_pairs(&edges[..cut]).unwrap();
    engine.try_await_quiescence().unwrap();
    let snap = engine.try_snapshot().unwrap();
    engine.try_ingest_pairs(&edges[cut..]).unwrap(); // keep going; snapshot must not care
    let _ = engine.try_finish().unwrap();

    let csr = undirected_csr(&edges[..cut]);
    let want = oracle::bfs_levels(&csr, source);
    for (v, &level) in snap.iter() {
        assert_eq!(level, want[v as usize], "vertex {v} in snapshot");
    }
    // And nothing from the suffix leaked in.
    let prefix_vertices: std::collections::HashSet<u64> =
        edges[..cut].iter().flat_map(|&(a, b)| [a, b]).collect();
    for (v, _) in snap.iter() {
        assert!(
            prefix_vertices.contains(&v),
            "vertex {v} is from the future"
        );
    }
}

/// Counter and Safra detectors must agree on the fixpoint (and Safra must
/// actually run its token protocol).
#[test]
fn termination_detectors_agree() {
    let edges = dataset_edges(Dataset::ErdosRenyi, 0.02, 9);
    let source = edges[0].0;

    let run = |mode: TerminationMode| {
        let config = EngineConfig {
            termination: mode,
            ..EngineConfig::undirected(3)
        };
        let engine = Engine::new(IncBfs, config);
        engine.try_init_vertex(source).unwrap();
        engine.try_ingest_pairs(&edges).unwrap();
        engine.try_finish().unwrap()
    };
    let counter = run(TerminationMode::Counter);
    let safra = run(TerminationMode::Safra);
    assert_eq!(counter.states.into_vec(), safra.states.into_vec());
    assert!(safra.metrics.total().safra_tokens > 0);
}

/// SSSP against Dijkstra on a weighted workload, multiple shard counts.
#[test]
fn live_sssp_equals_dijkstra_across_shard_counts() {
    let pairs = dataset_edges(Dataset::SmallWorld, 0.02, 3);
    // Dedupe pairs so the final weight per edge is unambiguous.
    let mut seen = std::collections::HashSet::new();
    let pairs: Vec<(u64, u64)> = pairs
        .into_iter()
        .filter(|&(a, b)| seen.insert((a, b)))
        .collect();
    let weighted = stream::with_weights(&pairs, 12, 8);
    let source = weighted[0].0;

    let n = oracle::implied_vertices(&pairs);
    let csr = Csr::from_weighted_edges(n, &oracle::construct::symmetrize_weighted(&weighted));
    let want = oracle::sssp_costs(&csr, source);

    for shards in [1usize, 4, 8] {
        let engine = Engine::new(IncSssp, EngineConfig::undirected(shards));
        engine.try_init_vertex(source).unwrap();
        engine.try_ingest_weighted(&weighted).unwrap();
        let dynamic = engine.try_finish().unwrap().states;
        for (v, &cost) in dynamic.iter() {
            assert_eq!(cost, want[v as usize], "vertex {v} at P={shards}");
        }
    }
}

/// Multi S-T with 64 sources (the Fig. 7 maximum) against per-source BFS.
#[test]
fn multi_st_64_sources_matches_oracle() {
    let edges = dataset_edges(Dataset::WebgraphLike, 0.01, 17);
    let n = oracle::implied_vertices(&edges) as u64;
    let sources: Vec<u64> = (0..64).map(|i| (i * 37) % n).collect();

    let engine = Engine::new(IncStCon::new(sources.clone()), EngineConfig::undirected(4));
    for &s in &sources {
        engine.try_init_vertex(s).unwrap();
    }
    engine.try_ingest_pairs(&edges).unwrap();
    let dynamic = engine.try_finish().unwrap().states;

    let csr = undirected_csr(&edges);
    let want = oracle::st_masks(&csr, &sources);
    for (v, &mask) in dynamic.iter() {
        assert_eq!(mask, want[v as usize], "vertex {v}");
    }
}

/// The §III-E guarantee, end to end: an S-T trigger fires exactly once per
/// satisfying vertex, never for non-satisfying vertices, and the set of
/// fired vertices equals the final connectivity set (no false positives,
/// no misses).
#[test]
fn st_trigger_fires_exactly_for_connected_vertices() {
    let edges = dataset_edges(Dataset::TwitterLike, 0.01, 29);
    let source = edges[0].0;

    let mut builder = EngineBuilder::new(IncStCon::new(vec![source]), EngineConfig::undirected(4));
    builder.trigger("connected to S", |_, mask: &u64| *mask != 0);
    let engine = builder.build();
    engine.try_init_vertex(source).unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();

    let fired: Vec<u64> = engine
        .trigger_events()
        .try_iter()
        .map(|f| f.vertex)
        .collect();
    let result = engine.try_finish().unwrap();

    let mut fired_sorted = fired.clone();
    fired_sorted.sort_unstable();
    let mut connected: Vec<u64> = result
        .states
        .iter()
        .filter(|(_, &m)| m != 0)
        .map(|(v, _)| v)
        .collect();
    connected.sort_unstable();
    assert_eq!(fired_sorted, connected);
    // Exactly once: no duplicates.
    let unique: std::collections::HashSet<u64> = fired.iter().copied().collect();
    assert_eq!(unique.len(), fired.len());
}

/// §VI-B end to end: generational BFS after deletions equals a static BFS
/// over the remaining graph.
#[test]
fn generational_delete_matches_recompute() {
    let edges = dataset_edges(Dataset::SmallWorld, 0.01, 41);
    let source = edges[0].0;
    // Delete every 7th edge after full ingestion.
    let deletions: Vec<(u64, u64)> = edges.iter().step_by(7).copied().collect();

    let (algo, generation) = GenBfs::new();
    let engine = Engine::new(algo, EngineConfig::undirected(4));
    engine.try_init_vertex(source).unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    engine.try_await_quiescence().unwrap();
    engine.try_delete_pairs(&deletions).unwrap();
    engine.try_await_quiescence().unwrap();
    let g = generation.bump();
    engine.try_init_vertex(source).unwrap();
    let states = engine.try_finish().unwrap().states;

    // Static oracle over the remaining edges. Note deletions remove the
    // edge regardless of how many duplicate adds occurred (store dedupes).
    let deleted: std::collections::HashSet<(u64, u64)> = deletions
        .iter()
        .flat_map(|&(a, b)| [(a, b), (b, a)])
        .collect();
    let remaining: Vec<(u64, u64)> = edges
        .iter()
        .filter(|&&(a, b)| !deleted.contains(&(a, b)))
        .copied()
        .collect();
    let csr = undirected_csr(&remaining);
    let want = oracle::bfs_levels(&csr, source);

    for (v, &state) in states.iter() {
        let got = remo::algos::generational::level_in_generation(state, g);
        let expect = want.get(v as usize).copied().unwrap_or(UNREACHED);
        assert_eq!(got, expect, "vertex {v} after deletions");
    }
}

/// The store's spill tier holds the same adjacency data the engine computed
/// — exercise evict/restore round-trips against the live engine topology.
#[test]
fn spill_tier_preserves_engine_topology() {
    use remo::store::{EdgeMeta, TieredAdjacency};
    let edges = dataset_edges(Dataset::Sk2005Like, 0.01, 13);

    let mut tiered = TieredAdjacency::new().unwrap();
    let mut model: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        Default::default();
    for &(s, d) in &edges {
        tiered.insert_edge(s, d, EdgeMeta::unweighted()).unwrap();
        model.entry(s).or_default().insert(d);
    }
    // Evict everything small, then verify every vertex faults in correctly.
    tiered.evict_small(usize::MAX).unwrap();
    assert_eq!(tiered.hot_count(), 0);
    for (&v, nbrs) in &model {
        let got: std::collections::HashSet<u64> = tiered
            .neighbors(v)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(&got, nbrs, "vertex {v} after spill round-trip");
    }
    let (spills, restores) = tiered.io_counters();
    assert!(spills > 0 && restores > 0);
}

/// Metrics sanity on a full run: every ingested topology event became an
/// add (+ reverse-add when undirected), and envelope accounting balances.
#[test]
fn metrics_account_for_every_event() {
    let edges = dataset_edges(Dataset::ErdosRenyi, 0.01, 55);
    let engine = Engine::new(DegreeCount, EngineConfig::undirected(4));
    engine.try_ingest_pairs(&edges).unwrap();
    let r = engine.try_finish().unwrap();
    let t = r.metrics.total();
    assert_eq!(t.topo_ingested as usize, edges.len());
    assert_eq!(t.add_events as usize, edges.len());
    assert_eq!(t.reverse_add_events as usize, edges.len());
    assert_eq!(
        t.envelopes_sent,
        t.events_processed(),
        "all sent envelopes must be processed at quiescence"
    );
}

/// The multi-query vision (§I): BFS and CC maintained simultaneously on one
/// dynamic graph must each equal their solo fixpoints — and the static
/// oracles.
#[test]
fn paired_bfs_and_cc_match_solo_and_oracles() {
    use remo::core::Pair;
    let edges = dataset_edges(Dataset::TwitterLike, 0.02, 77);
    let source = edges[0].0;

    let engine = Engine::new(Pair::new(IncBfs, IncCc), EngineConfig::undirected(4));
    engine.try_init_vertex(source).unwrap();
    engine.try_ingest_pairs(&edges).unwrap();
    let both = engine.try_finish().unwrap().states;

    let csr = undirected_csr(&edges);
    let bfs_want = oracle::bfs_levels(&csr, source);
    let cc_want = oracle::components_dominator_label(&csr, cc_label);
    for (v, (level, label)) in both.iter() {
        assert_eq!(*level, bfs_want[v as usize], "BFS component, vertex {v}");
        assert_eq!(*label, cc_want[v as usize], "CC component, vertex {v}");
    }
}
