//! # remo — incremental graph processing for on-line analytics
//!
//! A production-quality Rust reproduction of *Incremental Graph Processing
//! for On-Line Analytics* (Sallinen, Pearce, Ripeanu, IPDPS 2019): an
//! event-centric, shared-nothing engine that keeps **live, queryable
//! algorithm state** while a graph is constructed and modified, one edge
//! event at a time.
//!
//! This facade crate re-exports the workspace:
//!
//! - [`core`]: the engine — shards, visitor events, consistent-hash
//!   partitioning, quiescence detection (counter + Safra), continuous
//!   snapshots, local-state triggers.
//! - [`store`]: storage — Robin Hood hashing, degree-aware adjacency, CSR,
//!   NVRAM-stand-in spill tier.
//! - [`algos`]: the REMO algorithms — BFS, SSSP, CC, multi S-T, degree
//!   tracking, generational (delete-capable) BFS.
//! - [`baseline`]: static comparators and correctness oracles.
//! - [`gen`]: deterministic workload generators (RMAT/Graph500,
//!   preferential attachment, copying-model web graphs, ER, Watts–Strogatz).
//!
//! ## Quickstart
//!
//! ```
//! use remo::prelude::*;
//!
//! // Live BFS over a growing graph, 4 shard threads.
//! let engine = Engine::new(IncBfs, EngineConfig::undirected(4));
//! engine.try_init_vertex(0).unwrap();                       // the BFS source
//! engine.try_ingest_pairs(&[(0, 1), (1, 2), (0, 3)]).unwrap();
//! let result = engine.try_finish().unwrap();
//! assert_eq!(result.states.get(2), Some(&3));  // two hops from the source
//! ```
//!
//! See `examples/` for the "When" trigger workflow (fraud detection), live
//! reachability on a growing social graph, and dynamic route costs.

pub use remo_algos as algos;
pub use remo_baseline as baseline;
pub use remo_core as core;
pub use remo_gen as gen;
pub use remo_store as store;

/// The most common imports in one place.
pub mod prelude {
    pub use remo_algos::{
        cc_label, DegreeCount, GenBfs, IncBfs, IncBfsDeterministic, IncBfsSuppressed, IncCc,
        IncSssp, IncStCon, IncStConWide, IncTemporal, IncWidest, OutDegreeCount,
    };
    pub use remo_core::{
        AdaptiveConfig, AlgoCtx, Algorithm, DurabilityConfig, Engine, EngineBuilder, EngineConfig,
        EventCtx, Pair, PlacementPolicy, QueryId, QueryRegistry, RegPayload, SequentialEngine,
        Snapshot, StorageLayout, TelemetryConfig, TelemetryHub, TerminationMode, TopoEvent,
        TraceConfig, TransportMode, TriggerFire, VertexId, Weight,
    };
    pub use remo_gen::{Dataset, RmatConfig};
}
